#include "ecc/reed_solomon.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xed::ecc
{

namespace
{

/** Polynomial helpers; coefficients ascending (p[0] = x^0 term). */
using Poly = std::vector<std::uint8_t>;

unsigned
degree(const Poly &p)
{
    for (std::size_t i = p.size(); i-- > 0;)
        if (p[i] != 0)
            return static_cast<unsigned>(i);
    return 0;
}

/** degree() over a raw coefficient array. */
unsigned
degreeOfArray(const std::uint8_t *p, unsigned size)
{
    for (unsigned i = size; i-- > 0;)
        if (p[i] != 0)
            return i;
    return 0;
}

Poly
polyMul(const GF256 &gf, const Poly &a, const Poly &b)
{
    Poly out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= gf.mul(a[i], b[j]);
    }
    return out;
}

std::uint8_t
polyEval(const GF256 &gf, const Poly &p, std::uint8_t x)
{
    std::uint8_t acc = 0;
    for (std::size_t i = p.size(); i-- > 0;)
        acc = static_cast<std::uint8_t>(gf.mul(acc, x) ^ p[i]);
    return acc;
}

/** polyEval() over a raw array, with the multiplier row hoisted. */
std::uint8_t
polyEvalArray(const GF256 &gf, const std::uint8_t *p, unsigned size,
              std::uint8_t x)
{
    const std::uint8_t *row = gf.mulRowPtr(x);
    std::uint8_t acc = 0;
    for (unsigned i = size; i-- > 0;)
        acc = static_cast<std::uint8_t>(row[acc] ^ p[i]);
    return acc;
}

/** Formal derivative in characteristic 2: odd-degree terms survive. */
Poly
polyDeriv(const Poly &p)
{
    Poly out(p.size() > 1 ? p.size() - 1 : 1, 0);
    for (std::size_t i = 1; i < p.size(); i += 2)
        out[i - 1] = p[i];
    return out;
}

} // namespace

ReedSolomon::ReedSolomon(unsigned n, unsigned k)
    : gf_(GF256::instance()), n_(n), k_(k)
{
    if (n > GF256::groupOrder || k >= n || k == 0)
        throw std::invalid_argument("invalid RS parameters");
    // g(x) = prod_{i=0}^{n-k-1} (x + alpha^i); roots alpha^0..alpha^{n-k-1}.
    gen_ = {1};
    for (unsigned i = 0; i < n - k; ++i) {
        const Poly factor = {gf_.expAlpha(i), 1};
        gen_ = polyMul(gf_, gen_, factor);
    }

    // Per-position evaluation tables (setup-time only; the decode
    // paths never allocate).
    const unsigned r = numCheck();
    synRow_.resize(static_cast<std::size_t>(r) * n_);
    for (unsigned j = 0; j < r; ++j)
        for (unsigned i = 0; i < n_; ++i)
            synRow_[static_cast<std::size_t>(j) * n_ + i] = gf_.mulRowPtr(
                gf_.expAlpha((j * degreeOf(i)) % GF256::groupOrder));
    chienXinv_.resize(n_);
    posX_.resize(n_);
    for (unsigned p = 0; p < n_; ++p) {
        const unsigned deg = degreeOf(p);
        chienXinv_[p] = gf_.expAlpha(
            GF256::groupOrder - (deg % GF256::groupOrder));
        posX_[p] = gf_.expAlpha(deg);
    }
    if (fitsScratch()) {
        constexpr unsigned maxDeg = RsScratch::maxPoly + RsScratch::maxR;
        chienPow_.resize(static_cast<std::size_t>(maxDeg) * n_);
        for (unsigned d = 0; d < maxDeg; ++d)
            for (unsigned p = 0; p < n_; ++p)
                chienPow_[static_cast<std::size_t>(d) * n_ + p] =
                    gf_.pow(chienXinv_[p], d);
    }
}

void
ReedSolomon::encode(std::span<const std::uint8_t> data,
                    std::span<std::uint8_t> out) const
{
    if (data.size() != k_)
        throw std::invalid_argument("RS encode: wrong data length");
    if (out.size() != n_)
        throw std::invalid_argument("RS encode: wrong output length");
    const unsigned r = numCheck();
    // Long-division of data(x) * x^r by g(x); remainder = check symbols.
    // Work MSB-first over the data-first symbol order. The remainder
    // register lives on the stack: r < 255 always.
    std::uint8_t rem[GF256::groupOrder] = {};
    const std::uint8_t *gen = gen_.data();
    for (unsigned i = 0; i < k_; ++i) {
        const std::uint8_t feedback =
            static_cast<std::uint8_t>(data[i] ^ rem[r - 1]);
        const std::uint8_t *row = gf_.mulRowPtr(feedback);
        for (unsigned j = r; j-- > 1;)
            rem[j] = static_cast<std::uint8_t>(rem[j - 1] ^ row[gen[j]]);
        rem[0] = row[gen[0]];
    }
    if (out.data() != data.data())
        std::copy(data.begin(), data.end(), out.begin());
    // Check symbols: remainder coefficients, highest degree first so that
    // codeword index i corresponds to degree n-1-i throughout.
    for (unsigned j = 0; j < r; ++j)
        out[k_ + j] = rem[r - 1 - j];
}

std::vector<std::uint8_t>
ReedSolomon::encode(const std::vector<std::uint8_t> &data) const
{
    std::vector<std::uint8_t> out(n_);
    encode(std::span<const std::uint8_t>(data),
           std::span<std::uint8_t>(out));
    return out;
}

void
ReedSolomon::syndromesInto(const std::uint8_t *received,
                           std::uint8_t *syn) const
{
    const unsigned r = numCheck();
    // S_0 = r(1): a plain XOR over the symbols.
    std::uint8_t s0 = 0;
    for (unsigned i = 0; i < n_; ++i)
        s0 ^= received[i];
    syn[0] = s0;
    // S_j = sum_i received[i] * alpha^{j*deg(i)}: independent table
    // loads via the precomputed per-position product rows.
    for (unsigned j = 1; j < r; ++j) {
        const std::uint8_t *const *rows =
            synRow_.data() + static_cast<std::size_t>(j) * n_;
        std::uint8_t acc = 0;
        for (unsigned i = 0; i < n_; ++i)
            acc ^= rows[i][received[i]];
        syn[j] = acc;
    }
}

bool
ReedSolomon::isValidCodeword(std::span<const std::uint8_t> received) const
{
    assert(received.size() == n_);
    const std::uint8_t *word = received.data();
    const unsigned r = numCheck();
    std::uint8_t s0 = 0;
    for (unsigned i = 0; i < n_; ++i)
        s0 ^= word[i];
    if (s0 != 0)
        return false;
    for (unsigned j = 1; j < r; ++j) {
        const std::uint8_t *const *rows =
            synRow_.data() + static_cast<std::size_t>(j) * n_;
        std::uint8_t acc = 0;
        for (unsigned i = 0; i < n_; ++i)
            acc ^= rows[i][word[i]];
        if (acc != 0)
            return false;
    }
    return true;
}

std::size_t
ReedSolomon::countInvalidSoa(std::span<const std::uint8_t> soa,
                             std::size_t count) const
{
    if (soa.size() != static_cast<std::size_t>(n_) * count)
        throw std::invalid_argument(
            "RS countInvalidSoa: span must hold n * count symbols");
    const unsigned r = numCheck();
    std::size_t invalid = 0;
    // Fixed-size stack lanes keep the working set in L1 and the kernel
    // allocation-free for any count.
    constexpr std::size_t chunk = 512;
    std::uint8_t acc[chunk];
    std::uint8_t bad[chunk];
    for (std::size_t base = 0; base < count; base += chunk) {
        const std::size_t m = std::min(chunk, count - base);
        std::fill(bad, bad + m, 0);
        for (unsigned j = 0; j < r; ++j) {
            // Horner over symbols (degree-descending, as syndromes()):
            // acc = acc * alpha^j ^ soa[i]; the multiplier is constant
            // across the lane, so each step is one mulConstInto pass.
            const std::uint8_t x = gf_.expAlpha(j);
            std::fill(acc, acc + m, 0);
            for (unsigned i = 0; i < n_; ++i) {
                const std::uint8_t *lane =
                    soa.data() + static_cast<std::size_t>(i) * count +
                    base;
                if (j != 0)
                    gf_.mulConstInto(x, acc, acc, m);
                for (std::size_t c = 0; c < m; ++c)
                    acc[c] ^= lane[c];
            }
            for (std::size_t c = 0; c < m; ++c)
                bad[c] |= acc[c];
        }
        for (std::size_t c = 0; c < m; ++c)
            invalid += bad[c] != 0;
    }
    return invalid;
}

void
ReedSolomon::syndromesManyStrided(const std::uint8_t *soa,
                                  std::size_t stride, std::size_t count,
                                  std::uint8_t *syn,
                                  std::size_t synStride) const
{
    const unsigned r = numCheck();
    // Same fixed-size stack lane as countInvalidSoa: L1-resident and
    // allocation-free for any count.
    constexpr std::size_t chunk = 512;
    std::uint8_t acc[chunk];
    for (std::size_t base = 0; base < count; base += chunk) {
        const std::size_t m = std::min(chunk, count - base);
        for (unsigned j = 0; j < r; ++j) {
            // Horner over symbols (degree-descending, as syndromes()):
            // acc = acc * alpha^j ^ soa[i]; the multiplier is constant
            // across the lane, so each step is one mulConstInto pass.
            const std::uint8_t x = gf_.expAlpha(j);
            std::fill(acc, acc + m, 0);
            for (unsigned i = 0; i < n_; ++i) {
                const std::uint8_t *lane = soa + i * stride + base;
                if (j != 0)
                    gf_.mulConstInto(x, acc, acc, m);
                for (std::size_t c = 0; c < m; ++c)
                    acc[c] ^= lane[c];
            }
            std::copy(acc, acc + m, syn + j * synStride + base);
        }
    }
}

void
ReedSolomon::syndromesManySoa(std::span<const std::uint8_t> soa,
                              std::size_t count,
                              std::span<std::uint8_t> syn) const
{
    if (soa.size() != static_cast<std::size_t>(n_) * count)
        throw std::invalid_argument(
            "RS syndromesManySoa: span must hold n * count symbols");
    if (syn.size() != static_cast<std::size_t>(numCheck()) * count)
        throw std::invalid_argument(
            "RS syndromesManySoa: output must hold numCheck * count");
    syndromesManyStrided(soa.data(), count, count, syn.data(), count);
}

void
ReedSolomon::syndromesManySoa(const RsWordBlock &block,
                              std::span<std::uint8_t> syn) const
{
    if (block.n() != n_)
        throw std::invalid_argument(
            "RS syndromesManySoa: block has the wrong symbol count");
    if (syn.size() != static_cast<std::size_t>(numCheck()) * block.size())
        throw std::invalid_argument(
            "RS syndromesManySoa: output must hold numCheck * size");
    syndromesManyStrided(block.data(), block.stride(), block.size(),
                         syn.data(), block.size());
}

std::size_t
ReedSolomon::validManyStrided(const std::uint8_t *soa, std::size_t stride,
                              std::size_t count,
                              std::uint8_t *valid) const
{
    const unsigned r = numCheck();
    std::size_t invalid = 0;
    constexpr std::size_t chunk = 512;
    std::uint8_t acc[chunk];
    std::uint8_t bad[chunk];
    for (std::size_t base = 0; base < count; base += chunk) {
        const std::size_t m = std::min(chunk, count - base);
        std::fill(bad, bad + m, 0);
        for (unsigned j = 0; j < r; ++j) {
            const std::uint8_t x = gf_.expAlpha(j);
            std::fill(acc, acc + m, 0);
            for (unsigned i = 0; i < n_; ++i) {
                const std::uint8_t *lane = soa + i * stride + base;
                if (j != 0)
                    gf_.mulConstInto(x, acc, acc, m);
                for (std::size_t c = 0; c < m; ++c)
                    acc[c] ^= lane[c];
            }
            for (std::size_t c = 0; c < m; ++c)
                bad[c] |= acc[c];
        }
        for (std::size_t c = 0; c < m; ++c) {
            valid[base + c] = bad[c] == 0;
            invalid += bad[c] != 0;
        }
    }
    return invalid;
}

std::size_t
ReedSolomon::isValidCodewordMany(std::span<const std::uint8_t> soa,
                                 std::size_t count,
                                 std::span<std::uint8_t> valid) const
{
    if (soa.size() != static_cast<std::size_t>(n_) * count)
        throw std::invalid_argument(
            "RS isValidCodewordMany: span must hold n * count symbols");
    if (valid.size() != count)
        throw std::invalid_argument(
            "RS isValidCodewordMany: flag span must hold count bytes");
    return validManyStrided(soa.data(), count, count, valid.data());
}

std::size_t
ReedSolomon::isValidCodewordMany(const RsWordBlock &block,
                                 std::span<std::uint8_t> valid) const
{
    if (block.n() != n_)
        throw std::invalid_argument(
            "RS isValidCodewordMany: block has the wrong symbol count");
    if (valid.size() != block.size())
        throw std::invalid_argument(
            "RS isValidCodewordMany: flag span must hold size bytes");
    return validManyStrided(block.data(), block.stride(), block.size(),
                            valid.data());
}

std::vector<std::uint8_t>
ReedSolomon::syndromes(const std::vector<std::uint8_t> &received) const
{
    const unsigned r = numCheck();
    std::vector<std::uint8_t> syn(r, 0);
    for (unsigned j = 0; j < r; ++j) {
        // S_j = r(alpha^j), Horner over degrees n-1..0 (index 0 first).
        std::uint8_t acc = 0;
        const std::uint8_t x = gf_.expAlpha(j);
        for (unsigned i = 0; i < n_; ++i)
            acc = static_cast<std::uint8_t>(gf_.mul(acc, x) ^ received[i]);
        syn[j] = acc;
    }
    return syn;
}

bool
ReedSolomon::isCodeword(const std::vector<std::uint8_t> &received) const
{
    return isValidCodeword(std::span<const std::uint8_t>(received));
}

RsResult
ReedSolomon::decode(std::vector<std::uint8_t> &received,
                    const std::vector<unsigned> &erasures) const
{
    if (received.size() != n_)
        throw std::invalid_argument("RS decode: wrong codeword length");
    if (!fitsScratch())
        return decodeLegacy(received, erasures);
    RsScratch scratch;
    return decodeScratch(received.data(), erasures.data(),
                         static_cast<unsigned>(erasures.size()), scratch);
}

RsResult
ReedSolomon::decode(std::span<std::uint8_t> received,
                    std::span<const unsigned> erasures,
                    RsScratch &scratch) const
{
    if (received.size() != n_)
        throw std::invalid_argument("RS decode: wrong codeword length");
    assert(fitsScratch() &&
           "scratch decode requires n <= RsScratch::maxN, r <= maxR");
    return decodeScratch(received.data(), erasures.data(),
                         static_cast<unsigned>(erasures.size()), scratch);
}

RsResult
ReedSolomon::decodeScratch(std::uint8_t *received, const unsigned *erasures,
                           unsigned numErasures, RsScratch &s) const
{
    RsResult result;
    const unsigned r = numCheck();

    syndromesInto(received, s.syn.data());
    bool clean = true;
    for (unsigned j = 0; j < r; ++j)
        clean &= (s.syn[j] == 0);
    if (clean) {
        result.status = RsStatus::NoError;
        return result;
    }

    const unsigned e = numErasures;
    if (e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 + X_i x), X_i = alpha^{degree},
    // built up in place (multiply by {1, X} per erasure).
    s.gamma[0] = 1;
    unsigned gammaSize = 1;
    for (unsigned t = 0; t < e; ++t) {
        const unsigned idx = erasures[t];
        if (idx >= n_) {
            result.status = RsStatus::Failure;
            return result;
        }
        const std::uint8_t *row = gf_.mulRowPtr(posX_[idx]);
        s.gamma[gammaSize] = 0;
        for (unsigned j = gammaSize; j >= 1; --j)
            s.gamma[j] ^= row[s.gamma[j - 1]];
        ++gammaSize;
    }

    // Forney syndromes: T(x) = S(x) * Gamma(x) mod x^r; the subsequence
    // T_e..T_{r-1} obeys the errors-only locator recursion.
    for (unsigned j = 0; j < r; ++j) {
        std::uint8_t acc = 0;
        for (unsigned i = 0; i <= j; ++i)
            if (j - i < gammaSize)
                acc ^= gf_.mul(s.syn[i], s.gamma[j - i]);
        s.t[j] = acc;
    }

    // Berlekamp-Massey on u_m = T_{e+m}, m = 0..r-e-1, entirely on the
    // fixed-capacity scratch arrays (sizes bounded by maxPoly: every
    // shift length m and prior-polynomial length is <= r + 1).
    const unsigned nSeq = r - e;
    s.lambda[0] = 1;
    s.b[0] = 1;
    unsigned lambdaSize = 1;
    unsigned bSize = 1;
    unsigned lLen = 0;
    unsigned m = 1;
    std::uint8_t bCoef = 1;
    for (unsigned step = 0; step < nSeq; ++step) {
        std::uint8_t delta = 0;
        for (unsigned i = 0; i <= lLen && i < lambdaSize; ++i)
            if (step >= i)
                delta ^= gf_.mul(s.lambda[i], s.t[e + step - i]);
        if (delta == 0) {
            ++m;
            continue;
        }
        const std::uint8_t factor = gf_.div(delta, bCoef);
        const std::uint8_t *frow = gf_.mulRowPtr(factor);
        const unsigned shiftedSize = m + bSize;
        assert(shiftedSize <= RsScratch::maxPoly);
        if (2 * lLen <= step) {
            std::copy(s.lambda.begin(), s.lambda.begin() + lambdaSize,
                      s.oldLambda.begin());
            const unsigned oldSize = lambdaSize;
            if (shiftedSize > lambdaSize) {
                std::fill(s.lambda.begin() + lambdaSize,
                          s.lambda.begin() + shiftedSize, 0);
                lambdaSize = shiftedSize;
            }
            for (unsigned i = 0; i < bSize; ++i)
                s.lambda[m + i] ^= frow[s.b[i]];
            std::copy(s.oldLambda.begin(), s.oldLambda.begin() + oldSize,
                      s.b.begin());
            bSize = oldSize;
            lLen = step + 1 - lLen;
            bCoef = delta;
            m = 1;
        } else {
            if (shiftedSize > lambdaSize) {
                std::fill(s.lambda.begin() + lambdaSize,
                          s.lambda.begin() + shiftedSize, 0);
                lambdaSize = shiftedSize;
            }
            for (unsigned i = 0; i < bSize; ++i)
                s.lambda[m + i] ^= frow[s.b[i]];
            ++m;
        }
    }
    if (degreeOfArray(s.lambda.data(), lambdaSize) != lLen ||
        2 * lLen + e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Combined locator Psi = Lambda * Gamma and Chien search over the n
    // valid positions, probing the precomputed alpha^{-deg} points.
    const unsigned psiSize = lambdaSize + gammaSize - 1;
    assert(psiSize <= s.psi.size());
    std::fill(s.psi.begin(), s.psi.begin() + psiSize, 0);
    for (unsigned i = 0; i < lambdaSize; ++i) {
        if (s.lambda[i] == 0)
            continue;
        const std::uint8_t *row = gf_.mulRowPtr(s.lambda[i]);
        for (unsigned j = 0; j < gammaSize; ++j)
            s.psi[i + j] ^= row[s.gamma[j]];
    }
    // Evaluate Psi at every probe point per degree rather than per
    // position: evals[p] = XOR_d psi[d] * chienXinv_[p]^d, each degree
    // a constant-multiplier pass over the precomputed power row (the
    // vector GF kernels). Same field sum as the Horner chain, so the
    // zero set -- and every downstream byte -- is unchanged.
    assert(!chienPow_.empty());
    std::fill(s.evals.begin(), s.evals.begin() + n_, s.psi[0]);
    for (unsigned d = 1; d < psiSize; ++d) {
        if (s.psi[d] == 0)
            continue;
        gf_.mulConstXorInto(s.psi[d],
                            chienPow_.data() +
                                static_cast<std::size_t>(d) * n_,
                            s.evals.data(), n_);
    }
    unsigned numPositions = 0;
    for (unsigned p = 0; p < n_; ++p)
        if (s.evals[p] == 0)
            s.positions[numPositions++] = p;
    if (numPositions != degreeOfArray(s.psi.data(), psiSize)) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Error evaluator Omega(x) = S(x) * Psi(x) mod x^r and Forney values.
    for (unsigned j = 0; j < r; ++j) {
        std::uint8_t acc = 0;
        for (unsigned i = 0; i <= j; ++i)
            if (j - i < psiSize)
                acc ^= gf_.mul(s.syn[i], s.psi[j - i]);
        s.omega[j] = acc;
    }
    const unsigned derivSize = psiSize > 1 ? psiSize - 1 : 1;
    std::fill(s.psiDeriv.begin(), s.psiDeriv.begin() + derivSize, 0);
    for (unsigned i = 1; i < psiSize; i += 2)
        s.psiDeriv[i - 1] = s.psi[i];
    for (unsigned t = 0; t < numPositions; ++t) {
        const unsigned p = s.positions[t];
        const std::uint8_t xInv = chienXinv_[p];
        const std::uint8_t num =
            polyEvalArray(gf_, s.omega.data(), r, xInv);
        const std::uint8_t den =
            polyEvalArray(gf_, s.psiDeriv.data(), derivSize, xInv);
        if (den == 0) {
            result.status = RsStatus::Failure;
            return result;
        }
        const std::uint8_t magnitude =
            gf_.mul(posX_[p], gf_.div(num, den));
        received[p] ^= magnitude;
    }

    // Re-verify: a decoding that does not land on a codeword is a failure.
    if (!isValidCodeword(std::span<const std::uint8_t>(received, n_))) {
        result.status = RsStatus::Failure;
        return result;
    }
    result.status = RsStatus::Corrected;
    result.numErasures = e;
    result.numErrors = lLen;
    return result;
}

RsResult
ReedSolomon::decodeLegacy(std::vector<std::uint8_t> &received,
                          const std::vector<unsigned> &erasures) const
{
    RsResult result;
    const unsigned r = numCheck();

    const auto syn = syndromes(received);
    const bool clean = std::all_of(syn.begin(), syn.end(),
                                   [](std::uint8_t s) { return s == 0; });
    if (clean) {
        result.status = RsStatus::NoError;
        return result;
    }

    const unsigned e = static_cast<unsigned>(erasures.size());
    if (e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 + X_i x), X_i = alpha^{degree}.
    Poly gamma = {1};
    for (const unsigned idx : erasures) {
        if (idx >= n_) {
            result.status = RsStatus::Failure;
            return result;
        }
        const Poly factor = {1, gf_.expAlpha(degreeOf(idx))};
        gamma = polyMul(gf_, gamma, factor);
    }

    // Forney syndromes: T(x) = S(x) * Gamma(x) mod x^r; the subsequence
    // T_e..T_{r-1} obeys the errors-only locator recursion.
    Poly sPoly(syn.begin(), syn.end());
    Poly t = polyMul(gf_, sPoly, gamma);
    t.resize(r, 0);

    // Berlekamp-Massey on u_m = T_{e+m}, m = 0..r-e-1.
    const unsigned nSeq = r - e;
    Poly lambda = {1};
    Poly b = {1};
    unsigned lLen = 0;
    unsigned m = 1;
    std::uint8_t bCoef = 1;
    for (unsigned step = 0; step < nSeq; ++step) {
        std::uint8_t delta = 0;
        for (unsigned i = 0; i <= lLen && i < lambda.size(); ++i)
            if (step >= i)
                delta ^= gf_.mul(lambda[i], t[e + step - i]);
        if (delta == 0) {
            ++m;
        } else if (2 * lLen <= step) {
            const Poly oldLambda = lambda;
            const std::uint8_t factor = gf_.div(delta, bCoef);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), b.begin(), b.end());
            if (shifted.size() > lambda.size())
                lambda.resize(shifted.size(), 0);
            for (std::size_t i = 0; i < shifted.size(); ++i)
                lambda[i] ^= gf_.mul(factor, shifted[i]);
            b = oldLambda;
            lLen = step + 1 - lLen;
            bCoef = delta;
            m = 1;
        } else {
            const std::uint8_t factor = gf_.div(delta, bCoef);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), b.begin(), b.end());
            if (shifted.size() > lambda.size())
                lambda.resize(shifted.size(), 0);
            for (std::size_t i = 0; i < shifted.size(); ++i)
                lambda[i] ^= gf_.mul(factor, shifted[i]);
            ++m;
        }
    }
    if (degree(lambda) != lLen || 2 * lLen + e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Combined locator and Chien search over the n valid positions.
    Poly psi = polyMul(gf_, lambda, gamma);
    std::vector<unsigned> positions; // degree positions of all errors
    for (unsigned p = 0; p < n_; ++p) {
        const unsigned deg = degreeOf(p);
        const std::uint8_t xInv =
            gf_.expAlpha(GF256::groupOrder - (deg % GF256::groupOrder));
        if (polyEval(gf_, psi, xInv) == 0)
            positions.push_back(p);
    }
    if (positions.size() != degree(psi)) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Error evaluator Omega(x) = S(x) * Psi(x) mod x^r and Forney values.
    Poly omega = polyMul(gf_, sPoly, psi);
    omega.resize(r, 0);
    const Poly psiDeriv = polyDeriv(psi);
    for (const unsigned p : positions) {
        const unsigned deg = degreeOf(p);
        const std::uint8_t x = gf_.expAlpha(deg);
        const std::uint8_t xInv =
            gf_.expAlpha(GF256::groupOrder - (deg % GF256::groupOrder));
        const std::uint8_t num = polyEval(gf_, omega, xInv);
        const std::uint8_t den = polyEval(gf_, psiDeriv, xInv);
        if (den == 0) {
            result.status = RsStatus::Failure;
            return result;
        }
        const std::uint8_t magnitude = gf_.mul(x, gf_.div(num, den));
        received[p] ^= magnitude;
    }

    // Re-verify: a decoding that does not land on a codeword is a failure.
    if (!isCodeword(received)) {
        result.status = RsStatus::Failure;
        return result;
    }
    result.status = RsStatus::Corrected;
    result.numErasures = e;
    result.numErrors = lLen;
    return result;
}

} // namespace xed::ecc
