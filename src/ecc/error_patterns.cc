#include "ecc/error_patterns.hh"

namespace xed::ecc
{

Word72
randomPattern(Rng &rng, unsigned weight)
{
    Word72 pattern;
    unsigned placed = 0;
    while (placed < weight) {
        const unsigned pos = static_cast<unsigned>(rng.below(codeLength));
        if (!pattern.bit(pos)) {
            pattern.setBitTo(pos, 1);
            ++placed;
        }
    }
    return pattern;
}

Word72
solidBurstPattern(Rng &rng, unsigned length)
{
    Word72 pattern;
    const unsigned start =
        static_cast<unsigned>(rng.below(codeLength - length + 1));
    for (unsigned i = 0; i < length; ++i)
        pattern.setBitTo(start + i, 1);
    return pattern;
}

Word72
burstPattern(Rng &rng, unsigned length)
{
    Word72 pattern;
    const unsigned start =
        static_cast<unsigned>(rng.below(codeLength - length + 1));
    pattern.setBitTo(start, 1);
    pattern.setBitTo(start + length - 1, 1);
    for (unsigned i = 1; i + 1 < length; ++i)
        pattern.setBitTo(start + i, rng.bernoulli(0.5) ? 1 : 0);
    return pattern;
}

// The batch fills keep the scalar functions' RNG draw sequence exactly
// (same below() calls, same rejection rule), so batch and scalar runs
// produce identical patterns -- pinned by the equivalence suite. They
// build the 72 bits in a 128-bit accumulator so placing a bit is one
// branchless shift instead of Word72's per-position lo/hi branching.

void
randomPatternsInto(Rng &rng, unsigned weight, std::span<Word72> out)
{
    for (Word72 &pattern : out) {
        unsigned __int128 bits = 0;
        unsigned placed = 0;
        while (placed < weight) {
            const unsigned pos = static_cast<unsigned>(rng.below(codeLength));
            const unsigned __int128 mask =
                static_cast<unsigned __int128>(1) << pos;
            if (!(bits & mask)) {
                bits |= mask;
                ++placed;
            }
        }
        pattern.lo = static_cast<std::uint64_t>(bits);
        pattern.hi = static_cast<std::uint8_t>(bits >> 64);
    }
}

void
burstPatternsInto(Rng &rng, unsigned length, std::span<Word72> out)
{
    for (Word72 &pattern : out)
        pattern = burstPattern(rng, length);
}

void
solidBurstPatternsInto(Rng &rng, unsigned length, std::span<Word72> out)
{
    const unsigned starts = codeLength - length + 1;
    const unsigned __int128 run =
        (static_cast<unsigned __int128>(1) << length) - 1;
    for (Word72 &pattern : out) {
        const unsigned start = static_cast<unsigned>(rng.below(starts));
        const unsigned __int128 bits = run << start;
        pattern.lo = static_cast<std::uint64_t>(bits);
        pattern.hi = static_cast<std::uint8_t>(bits >> 64);
    }
}

} // namespace xed::ecc
