#include "ecc/error_patterns.hh"

namespace xed::ecc
{

Word72
randomPattern(Rng &rng, unsigned weight)
{
    Word72 pattern;
    unsigned placed = 0;
    while (placed < weight) {
        const unsigned pos = static_cast<unsigned>(rng.below(codeLength));
        if (!pattern.bit(pos)) {
            pattern.setBitTo(pos, 1);
            ++placed;
        }
    }
    return pattern;
}

Word72
solidBurstPattern(Rng &rng, unsigned length)
{
    Word72 pattern;
    const unsigned start =
        static_cast<unsigned>(rng.below(codeLength - length + 1));
    for (unsigned i = 0; i < length; ++i)
        pattern.setBitTo(start + i, 1);
    return pattern;
}

Word72
burstPattern(Rng &rng, unsigned length)
{
    Word72 pattern;
    const unsigned start =
        static_cast<unsigned>(rng.below(codeLength - length + 1));
    pattern.setBitTo(start, 1);
    pattern.setBitTo(start + length - 1, 1);
    for (unsigned i = 1; i + 1 < length; ++i)
        pattern.setBitTo(start + i, rng.bernoulli(0.5) ? 1 : 0);
    return pattern;
}

} // namespace xed::ecc
