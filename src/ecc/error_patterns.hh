/**
 * @file
 * Error-pattern generators for the detection-rate study (Table II):
 * exact-weight random patterns and burst patterns over a 72-bit word.
 */

#ifndef XED_ECC_ERROR_PATTERNS_HH
#define XED_ECC_ERROR_PATTERNS_HH

#include <span>

#include "common/rng.hh"
#include "ecc/word72.hh"

namespace xed::ecc
{

/** A random pattern with exactly @p weight bits set among 72. */
Word72 randomPattern(Rng &rng, unsigned weight);

/**
 * A burst pattern of span exactly @p length: a uniformly random window
 * start, the first and last bits of the window flipped, interior bits
 * flipped independently with probability 1/2. For length <= 2 this is a
 * solid flip of the whole window.
 */
Word72 burstPattern(Rng &rng, unsigned length);

/**
 * A solid burst: @p length consecutive bit flips at a random start.
 * This is the adversarial case for naturally-ordered Hamming codes
 * (about half of all aligned 4-bursts have a zero syndrome).
 */
Word72 solidBurstPattern(Rng &rng, unsigned length);

/**
 * Batched generators: fill @p out with patterns, drawing from @p rng in
 * exactly the per-pattern order of the scalar functions above, so a
 * batched campaign consumes the identical RNG stream (and therefore
 * produces byte-identical result stores). No allocation.
 */
void randomPatternsInto(Rng &rng, unsigned weight, std::span<Word72> out);
void burstPatternsInto(Rng &rng, unsigned length, std::span<Word72> out);
void solidBurstPatternsInto(Rng &rng, unsigned length,
                            std::span<Word72> out);

} // namespace xed::ecc

#endif // XED_ECC_ERROR_PATTERNS_HH
