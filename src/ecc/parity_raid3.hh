/**
 * @file
 * RAID-3 style XOR parity across the chips of a rank (Section V-C).
 *
 * XED stores, in the 9th chip of the ECC-DIMM, the bitwise XOR of the
 * 64-bit words the other eight chips contribute to a cache-line transfer
 * (Equation 1). A single chip identified by a catch-word is reconstructed
 * by XORing the parity with the remaining chips (Equation 3).
 */

#ifndef XED_ECC_PARITY_RAID3_HH
#define XED_ECC_PARITY_RAID3_HH

#include <cstdint>
#include <span>

namespace xed::ecc
{

/** XOR of all words: the content of the parity chip (Equation 1). */
std::uint64_t computeParity(std::span<const std::uint64_t> dataWords);

/**
 * Check Equation (1): parity XOR all data words == 0.
 */
bool paritySatisfied(std::span<const std::uint64_t> dataWords,
                     std::uint64_t parity);

/**
 * Reconstruct the word of the erased chip (Equation 3).
 *
 * @param dataWords words of all data chips; the entry at @p erasedIndex
 *        is ignored (it holds the catch-word / garbage).
 * @param parity    word from the parity chip.
 * @param erasedIndex which data chip to rebuild.
 */
std::uint64_t reconstructErased(std::span<const std::uint64_t> dataWords,
                                std::uint64_t parity,
                                std::size_t erasedIndex);

} // namespace xed::ecc

#endif // XED_ECC_PARITY_RAID3_HH
