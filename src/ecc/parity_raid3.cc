#include "ecc/parity_raid3.hh"

namespace xed::ecc
{

std::uint64_t
computeParity(std::span<const std::uint64_t> dataWords)
{
    std::uint64_t parity = 0;
    for (const auto w : dataWords)
        parity ^= w;
    return parity;
}

bool
paritySatisfied(std::span<const std::uint64_t> dataWords,
                std::uint64_t parity)
{
    return computeParity(dataWords) == parity;
}

std::uint64_t
reconstructErased(std::span<const std::uint64_t> dataWords,
                  std::uint64_t parity, std::size_t erasedIndex)
{
    std::uint64_t value = parity;
    for (std::size_t i = 0; i < dataWords.size(); ++i)
        if (i != erasedIndex)
            value ^= dataWords[i];
    return value;
}

} // namespace xed::ecc
