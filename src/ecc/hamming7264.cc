#include "ecc/hamming7264.hh"

#include <cassert>
#include <stdexcept>

namespace xed::ecc
{

namespace
{

/** Invert an 8x8 GF(2) matrix given as 8 column bytes; returns columns of
 *  the inverse. Throws if singular. */
std::array<std::uint8_t, 8>
invertColumns(const std::array<std::uint8_t, 8> &cols)
{
    // Row-reduce [M | I] where M's columns are the inputs. Represent rows
    // as 16-bit values: low 8 bits = M row, high 8 bits = identity row.
    std::array<std::uint16_t, 8> rows{};
    for (unsigned r = 0; r < 8; ++r) {
        std::uint16_t row = 0;
        for (unsigned c = 0; c < 8; ++c)
            row |= static_cast<std::uint16_t>((cols[c] >> r) & 1) << c;
        rows[r] = static_cast<std::uint16_t>(row | (1u << (8 + r)));
    }
    for (unsigned c = 0; c < 8; ++c) {
        unsigned pivot = c;
        while (pivot < 8 && !((rows[pivot] >> c) & 1))
            ++pivot;
        if (pivot == 8)
            throw std::logic_error("check columns are singular");
        std::swap(rows[c], rows[pivot]);
        for (unsigned r = 0; r < 8; ++r)
            if (r != c && ((rows[r] >> c) & 1))
                rows[r] ^= rows[c];
    }
    // Extract the inverse: its columns.
    std::array<std::uint8_t, 8> inv{};
    for (unsigned c = 0; c < 8; ++c) {
        std::uint8_t col = 0;
        for (unsigned r = 0; r < 8; ++r)
            col |= static_cast<std::uint8_t>(((rows[r] >> (8 + c)) & 1) << r);
        inv[c] = col;
    }
    return inv;
}

/** Multiply matrix (8 column bytes) by a vector byte. */
std::uint8_t
matVec(const std::array<std::uint8_t, 8> &cols, std::uint8_t v)
{
    std::uint8_t out = 0;
    for (unsigned c = 0; c < 8; ++c)
        if ((v >> c) & 1)
            out ^= cols[c];
    return out;
}

} // namespace

Hamming7264::Hamming7264()
{
    // Greedily select 8 linearly independent columns (lowest positions
    // first) as check positions; the rest carry data in position order.
    std::array<std::uint8_t, 8> basis{};
    std::array<std::uint8_t, 8> checkCols{};
    unsigned found = 0;
    std::array<bool, codeLength> isCheck{};
    for (unsigned p = 0; p < codeLength && found < checkLength; ++p) {
        std::uint8_t v = column(p);
        // Reduce v against the basis (basis[b] has leading bit b) to
        // test linear independence.
        std::uint8_t reduced = v;
        for (int b = 7; b >= 0; --b)
            if (((reduced >> b) & 1) && basis[b] != 0)
                reduced ^= basis[b];
        if (reduced == 0)
            continue;
        unsigned top = 7;
        while (!((reduced >> top) & 1))
            --top;
        basis[top] = reduced;
        checkCols[found] = v;
        checkPos_[found] = p;
        isCheck[p] = true;
        ++found;
    }
    assert(found == checkLength);

    unsigned d = 0;
    for (unsigned p = 0; p < codeLength; ++p)
        if (!isCheck[p])
            dataPos_[d++] = p;
    assert(d == dataLength);

    // solve_[s] = check-bit assignment whose column XOR equals s.
    const auto inv = invertColumns(checkCols);
    for (unsigned s = 0; s < 256; ++s)
        solve_[s] = matVec(inv, static_cast<std::uint8_t>(s));

    // Single-bit syndrome lookup.
    singleBitPos_.fill(0);
    for (unsigned p = 0; p < codeLength; ++p) {
        const std::uint8_t s = column(p);
        assert(singleBitPos_[s] == 0 && "duplicate single-bit syndrome");
        singleBitPos_[s] = static_cast<std::uint8_t>(p + 1);
    }

    // Byte-lane syndrome tables: lane b covers positions [8b, 8b+8).
    for (unsigned lane = 0; lane < 9; ++lane) {
        for (unsigned v = 0; v < 256; ++v) {
            std::uint8_t s = 0;
            for (unsigned bit = 0; bit < 8; ++bit)
                if ((v >> bit) & 1)
                    s ^= column(lane * 8 + bit);
            synTable_[lane][v] = s;
        }
    }
    nib_ = detail::makeNibbleTables(synTable_);
}

Word72
Hamming7264::encode(std::uint64_t data) const
{
    Word72 word;
    std::uint8_t s = 0;
    for (unsigned i = 0; i < dataLength; ++i) {
        if ((data >> i) & 1) {
            word.setBitTo(dataPos_[i], 1);
            s ^= column(dataPos_[i]);
        }
    }
    const std::uint8_t check = solve_[s];
    for (unsigned i = 0; i < checkLength; ++i)
        if ((check >> i) & 1)
            word.setBitTo(checkPos_[i], 1);
    return word;
}

std::uint8_t
Hamming7264::syndrome(const Word72 &received) const
{
    std::uint8_t s = 0;
    std::uint64_t lo = received.lo;
    for (unsigned lane = 0; lane < 8; ++lane) {
        s ^= synTable_[lane][lo & 0xFF];
        lo >>= 8;
    }
    s ^= synTable_[8][received.hi];
    return s;
}

bool
Hamming7264::isValidCodeword(const Word72 &received) const
{
    return syndrome(received) == 0;
}

std::size_t
Hamming7264::detectMany(std::span<const Word72> received) const
{
    const SimdLevel level = simdLevel();
    if (level != SimdLevel::Scalar)
        return detail::detectManySimd(level, nib_, received);
    std::size_t detected = 0;
    for (const Word72 &word : received) {
        std::uint8_t s = synTable_[8][word.hi];
        std::uint64_t lo = word.lo;
        for (unsigned lane = 0; lane < 8; ++lane) {
            s ^= synTable_[lane][lo & 0xFF];
            lo >>= 8;
        }
        detected += s != 0;
    }
    return detected;
}

void
Hamming7264::syndromeManySoa(const std::uint8_t *planes,
                             std::size_t stride, std::size_t count,
                             std::uint8_t *out) const
{
    detail::syndromeManySoaSimd(simdLevel(), nib_, planes, stride, count,
                                out);
}

std::uint64_t
Hamming7264::extractData(const Word72 &word) const
{
    std::uint64_t data = 0;
    for (unsigned i = 0; i < dataLength; ++i)
        data |= static_cast<std::uint64_t>(word.bit(dataPos_[i])) << i;
    return data;
}

DecodeResult
Hamming7264::decode(const Word72 &received) const
{
    DecodeResult result;
    const std::uint8_t s = syndrome(received);
    if (s == 0) {
        result.status = DecodeStatus::NoError;
        result.data = extractData(received);
        return result;
    }
    // The all-ones row (bit 7) tracks error-weight parity: odd-weight
    // errors (in particular single bits) have it set.
    if ((s & 0x80) && singleBitPos_[s] != 0) {
        Word72 fixed = received;
        const unsigned pos = static_cast<unsigned>(singleBitPos_[s]) - 1;
        fixed.flip(pos);
        result.status = DecodeStatus::CorrectedSingle;
        result.correctedBit = static_cast<int>(pos);
        result.data = extractData(fixed);
        return result;
    }
    result.status = DecodeStatus::DetectedUncorrectable;
    result.data = extractData(received);
    return result;
}

} // namespace xed::ecc
