/**
 * @file
 * Systematic Reed-Solomon RS(n, k) over GF(2^8) with errors-and-erasures
 * decoding (Forney syndromes + Berlekamp-Massey + Chien + Forney).
 *
 * These codes implement the symbol-based DIMM-level schemes the paper
 * compares against:
 *   - RS(18,16): commercial Chipkill (16 data chips + 2 check chips);
 *     corrects one faulty symbol per codeword.
 *   - RS(36,32): Double-Chipkill (32 data chips + 4 check chips);
 *     corrects two faulty symbols.
 *   - RS(18,16) in 2-erasure mode: XED on top of Chipkill (Section IX),
 *     where catch-words provide the two erasure locations.
 *
 * Two decode paths share one algorithm:
 *   - the scratch kernel (span + RsScratch) runs entirely on
 *     fixed-capacity stack arrays and precomputed per-position
 *     syndrome/Chien tables -- zero heap allocations, used by the
 *     controllers' read paths and the campaign hot loops;
 *   - the legacy vector API is a thin wrapper over the kernel for
 *     every code that fits RsScratch (n <= 36, n-k <= 4, i.e. all the
 *     paper's codes) and falls back to the original heap-based
 *     implementation for larger shapes (the test sweep's RS(255,223)).
 * Both paths return bit-identical statuses and corrected words.
 */

#ifndef XED_ECC_REED_SOLOMON_HH
#define XED_ECC_REED_SOLOMON_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ecc/gf256.hh"

namespace xed::ecc
{

/** Outcome of a Reed-Solomon decode. */
enum class RsStatus
{
    NoError,
    Corrected,
    /** More errors than the code can correct (or locator inconsistent). */
    Failure,
};

struct RsResult
{
    RsStatus status = RsStatus::Failure;
    unsigned numErrors = 0;
    unsigned numErasures = 0;
};

/**
 * Fixed-capacity decode workspace, sized for the paper's codes
 * (n <= 36 symbols, n-k <= 4 check symbols). Stack- or
 * member-allocated by the caller and reused across decodes; the decode
 * kernel never touches the heap. Contents are scratch only -- nothing
 * persists between calls.
 */
struct RsScratch
{
    /** Largest codeword the scratch kernel accepts (RS(36,32)). */
    static constexpr unsigned maxN = 36;
    /** Largest check-symbol count (Double-Chipkill's r = 4). */
    static constexpr unsigned maxR = 4;
    /** Berlekamp-Massey polynomial capacity (see reed_solomon.cc). */
    static constexpr unsigned maxPoly = 2 * maxR + 2;

    std::array<std::uint8_t, maxR> syn;
    std::array<std::uint8_t, maxR + 1> gamma;
    std::array<std::uint8_t, maxR> t;
    std::array<std::uint8_t, maxPoly> lambda;
    std::array<std::uint8_t, maxPoly> b;
    std::array<std::uint8_t, maxPoly> oldLambda;
    std::array<std::uint8_t, maxPoly + maxR> psi;
    std::array<std::uint8_t, maxPoly + maxR> psiDeriv;
    std::array<std::uint8_t, maxR> omega;
    std::array<unsigned, maxN> positions;
    /** Chien evaluations Psi(alpha^{-deg(p)}) for all n positions. */
    std::array<std::uint8_t, maxN> evals;
};

class ReedSolomon
{
  public:
    /**
     * @param n codeword length in symbols (n <= 255)
     * @param k data length in symbols (k < n)
     */
    ReedSolomon(unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned numCheck() const { return n_ - k_; }

    /** True iff the allocation-free scratch kernel covers this code. */
    bool
    fitsScratch() const
    {
        return n_ <= RsScratch::maxN && numCheck() <= RsScratch::maxR;
    }

    /**
     * Systematic encode. @p data has k symbols; returns n symbols with
     * data first (indices 0..k-1) followed by the check symbols.
     */
    std::vector<std::uint8_t> encode(
        const std::vector<std::uint8_t> &data) const;

    /**
     * Allocation-free systematic encode into caller storage:
     * @p data (k symbols) -> @p out (n symbols, data-first).
     * The two ranges may alias only if out.data() == data.data().
     */
    void encode(std::span<const std::uint8_t> data,
                std::span<std::uint8_t> out) const;

    /**
     * Decode @p received (n symbols) in place.
     *
     * @param erasures indices (0-based, data-first order) of symbols
     *        known to be unreliable, e.g. chips that sent a catch-word.
     *        Correctable iff 2*errors + erasures <= n-k.
     */
    RsResult decode(std::vector<std::uint8_t> &received,
                    const std::vector<unsigned> &erasures = {}) const;

    /**
     * Allocation-free decode of @p received (n symbols, in place) on
     * caller scratch. Requires fitsScratch(); results are bit-identical
     * to the vector overload.
     */
    RsResult decode(std::span<std::uint8_t> received,
                    std::span<const unsigned> erasures,
                    RsScratch &scratch) const;

    /** True iff @p received has all-zero syndromes. */
    bool isCodeword(const std::vector<std::uint8_t> &received) const;

    /**
     * Syndrome-only validity fast path: true iff all syndromes are
     * zero, returning at the first nonzero one. No allocation, no
     * correction attempt -- this is the detection kernel.
     */
    bool isValidCodeword(std::span<const std::uint8_t> received) const;

    /**
     * Batch validity over a structure-of-arrays block: @p soa holds
     * @p count codewords symbol-major, soa[i * count + c] = symbol i
     * of codeword c. Returns how many codewords have a nonzero
     * syndrome. The Horner multiplier per syndrome is a constant
     * (alpha^j), so the whole lane runs through the vector
     * GF256::mulConstInto() kernels; the result is identical to
     * calling isValidCodeword() per codeword at every dispatch level.
     */
    std::size_t countInvalidSoa(std::span<const std::uint8_t> soa,
                                std::size_t count) const;

  private:
    /** Map a data-first index to the polynomial degree position. */
    unsigned degreeOf(unsigned index) const { return n_ - 1 - index; }

    std::vector<std::uint8_t> syndromes(
        const std::vector<std::uint8_t> &received) const;

    /** Table-driven syndromes into @p syn (numCheck() entries). */
    void syndromesInto(const std::uint8_t *received,
                       std::uint8_t *syn) const;

    /** The allocation-free kernel behind both decode overloads. */
    RsResult decodeScratch(std::uint8_t *received,
                           const unsigned *erasures, unsigned numErasures,
                           RsScratch &scratch) const;

    /** Original heap-based decode, kept for codes beyond RsScratch. */
    RsResult decodeLegacy(std::vector<std::uint8_t> &received,
                          const std::vector<unsigned> &erasures) const;

    const GF256 &gf_;
    unsigned n_;
    unsigned k_;
    /** Generator polynomial, ascending degree; g[0] is x^0 coeff. */
    std::vector<std::uint8_t> gen_;
    /**
     * Per-position syndrome evaluation tables: synRow_[j * n + i] is
     * the GF256 product row of alpha^{j * deg(i)}, so syndrome j is
     * an XOR of n independent table loads instead of a dependent
     * Horner chain.
     */
    std::vector<const std::uint8_t *> synRow_;
    /** chienXinv_[p] = alpha^{-deg(p)}: the Chien/Forney probe point. */
    std::vector<std::uint8_t> chienXinv_;
    /**
     * chienPow_[d * n + p] = chienXinv_[p]^d for every locator degree
     * d < maxPoly + maxR, so the Chien search evaluates Psi across all
     * n positions as per-degree constant-multiplier passes over these
     * rows (vectorizable) instead of per-position Horner chains. Built
     * only for codes that fit RsScratch; empty otherwise.
     */
    std::vector<std::uint8_t> chienPow_;
    /** posX_[p] = alpha^{deg(p)}: the Forney magnitude factor. */
    std::vector<std::uint8_t> posX_;
};

} // namespace xed::ecc

#endif // XED_ECC_REED_SOLOMON_HH
