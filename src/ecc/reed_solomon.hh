/**
 * @file
 * Systematic Reed-Solomon RS(n, k) over GF(2^8) with errors-and-erasures
 * decoding (Forney syndromes + Berlekamp-Massey + Chien + Forney).
 *
 * These codes implement the symbol-based DIMM-level schemes the paper
 * compares against:
 *   - RS(18,16): commercial Chipkill (16 data chips + 2 check chips);
 *     corrects one faulty symbol per codeword.
 *   - RS(36,32): Double-Chipkill (32 data chips + 4 check chips);
 *     corrects two faulty symbols.
 *   - RS(18,16) in 2-erasure mode: XED on top of Chipkill (Section IX),
 *     where catch-words provide the two erasure locations.
 *
 * Two decode paths share one algorithm:
 *   - the scratch kernel (span + RsScratch) runs entirely on
 *     fixed-capacity stack arrays and precomputed per-position
 *     syndrome/Chien tables -- zero heap allocations, used by the
 *     controllers' read paths and the campaign hot loops;
 *   - the legacy vector API is a thin wrapper over the kernel for
 *     every code that fits RsScratch (n <= 36, n-k <= 4, i.e. all the
 *     paper's codes) and falls back to the original heap-based
 *     implementation for larger shapes (the test sweep's RS(255,223)).
 * Both paths return bit-identical statuses and corrected words.
 */

#ifndef XED_ECC_REED_SOLOMON_HH
#define XED_ECC_REED_SOLOMON_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "ecc/gf256.hh"

namespace xed::ecc
{

/** Outcome of a Reed-Solomon decode. */
enum class RsStatus
{
    NoError,
    Corrected,
    /** More errors than the code can correct (or locator inconsistent). */
    Failure,
};

struct RsResult
{
    RsStatus status = RsStatus::Failure;
    unsigned numErrors = 0;
    unsigned numErasures = 0;
};

/**
 * Fixed-capacity decode workspace, sized for the paper's codes
 * (n <= 36 symbols, n-k <= 4 check symbols). Stack- or
 * member-allocated by the caller and reused across decodes; the decode
 * kernel never touches the heap. Contents are scratch only -- nothing
 * persists between calls.
 */
struct RsScratch
{
    /** Largest codeword the scratch kernel accepts (RS(36,32)). */
    static constexpr unsigned maxN = 36;
    /** Largest check-symbol count (Double-Chipkill's r = 4). */
    static constexpr unsigned maxR = 4;
    /** Berlekamp-Massey polynomial capacity (see reed_solomon.cc). */
    static constexpr unsigned maxPoly = 2 * maxR + 2;

    std::array<std::uint8_t, maxR> syn;
    std::array<std::uint8_t, maxR + 1> gamma;
    std::array<std::uint8_t, maxR> t;
    std::array<std::uint8_t, maxPoly> lambda;
    std::array<std::uint8_t, maxPoly> b;
    std::array<std::uint8_t, maxPoly> oldLambda;
    std::array<std::uint8_t, maxPoly + maxR> psi;
    std::array<std::uint8_t, maxPoly + maxR> psiDeriv;
    std::array<std::uint8_t, maxR> omega;
    std::array<unsigned, maxN> positions;
    /** Chien evaluations Psi(alpha^{-deg(p)}) for all n positions. */
    std::array<std::uint8_t, maxN> evals;
};

/**
 * Transposed (symbol-major) staging block for the batch kernels.
 *
 * Word-major order defeats the vector GF(2^8) kernels: the syndrome
 * multiplier alpha^{j*deg(i)} changes with every symbol position, so a
 * pshufb nibble table would have to be reloaded per byte. Transposing
 * a block of codewords into n position planes -- plane i holds symbol
 * i of every staged word contiguously -- turns each Horner step into
 * one constant-multiplier pass over a whole plane, which is exactly
 * the GF256::mulConstInto() shape.
 *
 * Capacity is fixed at reset(); staging (push/openColumn/setSymbol)
 * never allocates, so controllers can keep one block per read batch
 * and stay allocation-free in steady state. The plane stride is the
 * capacity, not the current size.
 */
class RsWordBlock
{
  public:
    RsWordBlock() = default;
    RsWordBlock(unsigned n, std::size_t capacity) { reset(n, capacity); }

    /** (Re)shape to n symbol planes of @p capacity words; size() := 0.
     *  The only allocating call; everything below is pointer math. */
    void
    reset(unsigned n, std::size_t capacity)
    {
        n_ = n;
        capacity_ = capacity;
        size_ = 0;
        planes_.assign(static_cast<std::size_t>(n) * capacity, 0);
    }

    unsigned n() const { return n_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    bool full() const { return size_ == capacity_; }
    void clear() { size_ = 0; }

    /** Distance between consecutive symbols of one position plane. */
    std::size_t stride() const { return capacity_; }

    /** Stage one word (n symbols, word-major); returns its column. */
    std::size_t
    push(std::span<const std::uint8_t> word)
    {
        assert(word.size() == n_ && size_ < capacity_);
        std::uint8_t *base = planes_.data() + size_;
        for (unsigned i = 0; i < n_; ++i)
            base[static_cast<std::size_t>(i) * capacity_] = word[i];
        return size_++;
    }

    /** Open the next column for plane-wise setSymbol() writes (the
     *  gather order controllers prefer: per chip, then per word). */
    std::size_t
    openColumn()
    {
        assert(size_ < capacity_);
        return size_++;
    }

    void
    setSymbol(unsigned plane, std::size_t column, std::uint8_t value)
    {
        assert(plane < n_ && column < size_);
        planes_[static_cast<std::size_t>(plane) * capacity_ + column] =
            value;
    }

    std::uint8_t
    symbol(unsigned plane, std::size_t column) const
    {
        assert(plane < n_ && column < size_);
        return planes_[static_cast<std::size_t>(plane) * capacity_ +
                       column];
    }

    const std::uint8_t *
    plane(unsigned i) const
    {
        assert(i < n_);
        return planes_.data() + static_cast<std::size_t>(i) * capacity_;
    }

    std::uint8_t *
    plane(unsigned i)
    {
        assert(i < n_);
        return planes_.data() + static_cast<std::size_t>(i) * capacity_;
    }

    const std::uint8_t *data() const { return planes_.data(); }

  private:
    unsigned n_ = 0;
    std::size_t capacity_ = 0;
    std::size_t size_ = 0;
    std::vector<std::uint8_t> planes_;
};

class ReedSolomon
{
  public:
    /**
     * @param n codeword length in symbols (n <= 255)
     * @param k data length in symbols (k < n)
     */
    ReedSolomon(unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned numCheck() const { return n_ - k_; }

    /** True iff the allocation-free scratch kernel covers this code. */
    bool
    fitsScratch() const
    {
        return n_ <= RsScratch::maxN && numCheck() <= RsScratch::maxR;
    }

    /**
     * Systematic encode. @p data has k symbols; returns n symbols with
     * data first (indices 0..k-1) followed by the check symbols.
     */
    std::vector<std::uint8_t> encode(
        const std::vector<std::uint8_t> &data) const;

    /**
     * Allocation-free systematic encode into caller storage:
     * @p data (k symbols) -> @p out (n symbols, data-first).
     * The two ranges may alias only if out.data() == data.data().
     */
    void encode(std::span<const std::uint8_t> data,
                std::span<std::uint8_t> out) const;

    /**
     * Decode @p received (n symbols) in place.
     *
     * @param erasures indices (0-based, data-first order) of symbols
     *        known to be unreliable, e.g. chips that sent a catch-word.
     *        Correctable iff 2*errors + erasures <= n-k.
     */
    RsResult decode(std::vector<std::uint8_t> &received,
                    const std::vector<unsigned> &erasures = {}) const;

    /**
     * Allocation-free decode of @p received (n symbols, in place) on
     * caller scratch. Requires fitsScratch(); results are bit-identical
     * to the vector overload.
     */
    RsResult decode(std::span<std::uint8_t> received,
                    std::span<const unsigned> erasures,
                    RsScratch &scratch) const;

    /** True iff @p received has all-zero syndromes. */
    bool isCodeword(const std::vector<std::uint8_t> &received) const;

    /**
     * Syndrome-only validity fast path: true iff all syndromes are
     * zero, returning at the first nonzero one. No allocation, no
     * correction attempt -- this is the detection kernel.
     */
    bool isValidCodeword(std::span<const std::uint8_t> received) const;

    /**
     * Batch validity over a structure-of-arrays block: @p soa holds
     * @p count codewords symbol-major, soa[i * count + c] = symbol i
     * of codeword c. Returns how many codewords have a nonzero
     * syndrome. The Horner multiplier per syndrome is a constant
     * (alpha^j), so the whole lane runs through the vector
     * GF256::mulConstInto() kernels; the result is identical to
     * calling isValidCodeword() per codeword at every dispatch level.
     */
    std::size_t countInvalidSoa(std::span<const std::uint8_t> soa,
                                std::size_t count) const;

    /**
     * Batch syndromes over a structure-of-arrays block (layout as
     * countInvalidSoa): writes syn[j * count + c] = S_j of codeword c
     * for every check index j < numCheck(). Each Horner step is one
     * constant-multiplier pass over the whole lane, so the kernel runs
     * on the vector GF256 rows; the bytes written are identical to
     * per-word syndromesInto() at every dispatch level.
     */
    void syndromesManySoa(std::span<const std::uint8_t> soa,
                          std::size_t count,
                          std::span<std::uint8_t> syn) const;

    /** syndromesManySoa over a staged RsWordBlock (its size() words);
     *  syn must hold numCheck() * block.size() bytes. */
    void syndromesManySoa(const RsWordBlock &block,
                          std::span<std::uint8_t> syn) const;

    /**
     * Batch validity flags over a structure-of-arrays block: sets
     * valid[c] = 1 iff every syndrome of codeword c is zero (else 0)
     * and returns the number of invalid codewords. Flag-for-flag
     * identical to a per-word isValidCodeword() loop at every
     * dispatch level; countInvalidSoa() is the flag-free variant.
     */
    std::size_t isValidCodewordMany(std::span<const std::uint8_t> soa,
                                    std::size_t count,
                                    std::span<std::uint8_t> valid) const;

    /** isValidCodewordMany over a staged RsWordBlock (size() words). */
    std::size_t isValidCodewordMany(const RsWordBlock &block,
                                    std::span<std::uint8_t> valid) const;

  private:
    /** Map a data-first index to the polynomial degree position. */
    unsigned degreeOf(unsigned index) const { return n_ - 1 - index; }

    std::vector<std::uint8_t> syndromes(
        const std::vector<std::uint8_t> &received) const;

    /** Table-driven syndromes into @p syn (numCheck() entries). */
    void syndromesInto(const std::uint8_t *received,
                       std::uint8_t *syn) const;

    /** Strided core behind both syndromesManySoa overloads: plane i
     *  of the block starts at soa + i * stride; syndrome row j starts
     *  at syn + j * synStride. */
    void syndromesManyStrided(const std::uint8_t *soa, std::size_t stride,
                              std::size_t count, std::uint8_t *syn,
                              std::size_t synStride) const;

    /** Strided core behind both isValidCodewordMany overloads. */
    std::size_t validManyStrided(const std::uint8_t *soa,
                                 std::size_t stride, std::size_t count,
                                 std::uint8_t *valid) const;

    /** The allocation-free kernel behind both decode overloads. */
    RsResult decodeScratch(std::uint8_t *received,
                           const unsigned *erasures, unsigned numErasures,
                           RsScratch &scratch) const;

    /** Original heap-based decode, kept for codes beyond RsScratch. */
    RsResult decodeLegacy(std::vector<std::uint8_t> &received,
                          const std::vector<unsigned> &erasures) const;

    const GF256 &gf_;
    unsigned n_;
    unsigned k_;
    /** Generator polynomial, ascending degree; g[0] is x^0 coeff. */
    std::vector<std::uint8_t> gen_;
    /**
     * Per-position syndrome evaluation tables: synRow_[j * n + i] is
     * the GF256 product row of alpha^{j * deg(i)}, so syndrome j is
     * an XOR of n independent table loads instead of a dependent
     * Horner chain.
     */
    std::vector<const std::uint8_t *> synRow_;
    /** chienXinv_[p] = alpha^{-deg(p)}: the Chien/Forney probe point. */
    std::vector<std::uint8_t> chienXinv_;
    /**
     * chienPow_[d * n + p] = chienXinv_[p]^d for every locator degree
     * d < maxPoly + maxR, so the Chien search evaluates Psi across all
     * n positions as per-degree constant-multiplier passes over these
     * rows (vectorizable) instead of per-position Horner chains. Built
     * only for codes that fit RsScratch; empty otherwise.
     */
    std::vector<std::uint8_t> chienPow_;
    /** posX_[p] = alpha^{deg(p)}: the Forney magnitude factor. */
    std::vector<std::uint8_t> posX_;
};

} // namespace xed::ecc

#endif // XED_ECC_REED_SOLOMON_HH
