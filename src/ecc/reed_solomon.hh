/**
 * @file
 * Systematic Reed-Solomon RS(n, k) over GF(2^8) with errors-and-erasures
 * decoding (Forney syndromes + Berlekamp-Massey + Chien + Forney).
 *
 * These codes implement the symbol-based DIMM-level schemes the paper
 * compares against:
 *   - RS(18,16): commercial Chipkill (16 data chips + 2 check chips);
 *     corrects one faulty symbol per codeword.
 *   - RS(36,32): Double-Chipkill (32 data chips + 4 check chips);
 *     corrects two faulty symbols.
 *   - RS(18,16) in 2-erasure mode: XED on top of Chipkill (Section IX),
 *     where catch-words provide the two erasure locations.
 */

#ifndef XED_ECC_REED_SOLOMON_HH
#define XED_ECC_REED_SOLOMON_HH

#include <cstdint>
#include <vector>

#include "ecc/gf256.hh"

namespace xed::ecc
{

/** Outcome of a Reed-Solomon decode. */
enum class RsStatus
{
    NoError,
    Corrected,
    /** More errors than the code can correct (or locator inconsistent). */
    Failure,
};

struct RsResult
{
    RsStatus status = RsStatus::Failure;
    unsigned numErrors = 0;
    unsigned numErasures = 0;
};

class ReedSolomon
{
  public:
    /**
     * @param n codeword length in symbols (n <= 255)
     * @param k data length in symbols (k < n)
     */
    ReedSolomon(unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned numCheck() const { return n_ - k_; }

    /**
     * Systematic encode. @p data has k symbols; returns n symbols with
     * data first (indices 0..k-1) followed by the check symbols.
     */
    std::vector<std::uint8_t> encode(
        const std::vector<std::uint8_t> &data) const;

    /**
     * Decode @p received (n symbols) in place.
     *
     * @param erasures indices (0-based, data-first order) of symbols
     *        known to be unreliable, e.g. chips that sent a catch-word.
     *        Correctable iff 2*errors + erasures <= n-k.
     */
    RsResult decode(std::vector<std::uint8_t> &received,
                    const std::vector<unsigned> &erasures = {}) const;

    /** True iff @p received has all-zero syndromes. */
    bool isCodeword(const std::vector<std::uint8_t> &received) const;

  private:
    /** Map a data-first index to the polynomial degree position. */
    unsigned degreeOf(unsigned index) const { return n_ - 1 - index; }

    std::vector<std::uint8_t> syndromes(
        const std::vector<std::uint8_t> &received) const;

    const GF256 &gf_;
    unsigned n_;
    unsigned k_;
    /** Generator polynomial, ascending degree; g[0] is x^0 coeff. */
    std::vector<std::uint8_t> gen_;
};

} // namespace xed::ecc

#endif // XED_ECC_REED_SOLOMON_HH
