/**
 * @file
 * Vectorized (72,64) batch detection shared by Hamming7264 and
 * Crc8Atm.
 *
 * Both codes compute an 8-bit syndrome as the XOR of nine per-byte
 * table lookups (synTable_ lanes / slice-by-8 tables), and both
 * tables are GF(2)-linear in the byte: T[b] = T[b & 0x0F] ^
 * T[b & 0xF0]. That splits each 256-entry lane into two 16-entry
 * nibble tables -- exactly the shape vpshufb (x86) and tbl (NEON)
 * look up 32/64/16 bytes at a time. The kernels transpose a block of
 * Word72s into nine byte-slice vectors with an unpack network, XOR
 * the eighteen nibble lookups, and count the nonzero syndromes with
 * one compare + popcount per block.
 *
 * Every level returns exactly the count the scalar table loop
 * returns: the nibble split is exact (linearity is verified when the
 * tables are built), the transpose only permutes which lane holds
 * which word, and the result is an order-independent count.
 */

#ifndef XED_ECC_DETECT_SIMD_HH
#define XED_ECC_DETECT_SIMD_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/simd.hh"
#include "ecc/word72.hh"

namespace xed::ecc::detail
{

/**
 * Split-nibble syndrome tables: lo[s][v] = lane table s at byte v,
 * hi[s][v] = lane table s at byte v << 4, so the full lane lookup is
 * lo[s][b & 15] ^ hi[s][b >> 4]. Slot s = 8 covers Word72::hi.
 */
struct SecdedNibbleTables
{
    alignas(64) std::uint8_t lo[9][16];
    alignas(64) std::uint8_t hi[9][16];
};

/**
 * Derive the nibble tables from nine 256-entry byte-lane tables.
 * Throws std::logic_error unless every lane is GF(2)-linear (both
 * on-die codes are by construction; the check keeps a future
 * non-linear table from silently corrupting the vector path).
 */
SecdedNibbleTables makeNibbleTables(
    const std::array<std::array<std::uint8_t, 256>, 9> &lanes);

/**
 * Number of words in @p received with a nonzero syndrome, computed
 * with the kernels of @p level (Scalar runs the nibble-table loop).
 * Any span size and alignment; the sub-block tail runs scalar.
 */
std::size_t detectManySimd(SimdLevel level, const SecdedNibbleTables &t,
                           std::span<const Word72> received);

/**
 * Batched syndromes over a transposed (plane-major) block:
 * planes[s * stride + c] holds byte lane s of word c (lanes 0..7 are
 * the lo bytes LSB-first, lane 8 is hi). Writes the full 8-bit
 * syndrome of word c into out[c]. Because the caller already gathered
 * the words slice-major, the vector kernels skip detectManySimd's
 * unpack network entirely: each lane is two nibble lookups straight
 * off a contiguous plane load. Bytes are identical to the scalar
 * nibble-table loop at every level.
 */
void syndromeManySoaSimd(SimdLevel level, const SecdedNibbleTables &t,
                         const std::uint8_t *planes, std::size_t stride,
                         std::size_t count, std::uint8_t *out);

} // namespace xed::ecc::detail

#endif // XED_ECC_DETECT_SIMD_HH
