#include "ecc/crc8atm.hh"

#include <cassert>

namespace xed::ecc
{

Crc8Atm::Crc8Atm()
{
    // MSB-first byte table.
    for (unsigned b = 0; b < 256; ++b) {
        std::uint8_t r = static_cast<std::uint8_t>(b);
        for (int i = 0; i < 8; ++i)
            r = static_cast<std::uint8_t>((r << 1) ^ ((r & 0x80) ? poly : 0));
        table_[b] = r;
    }

    // Slice tables: slice 0 is the identity (a byte at degrees 0..7 is
    // already reduced); each further slice shifts one more byte, i.e.
    // applies the byte-at-a-time table once.
    for (unsigned b = 0; b < 256; ++b)
        slice_[0][b] = static_cast<std::uint8_t>(b);
    for (unsigned k = 1; k < slice_.size(); ++k)
        for (unsigned b = 0; b < 256; ++b)
            slice_[k][b] = slice_[k - 1][table_[b]];

    // Syndrome of a single-bit error at codeword position p (degree p
    // coefficient): x^p mod g(x).
    singleBitPos_.fill(0);
    for (unsigned p = 0; p < codeLength; ++p) {
        std::uint8_t r = 1; // x^0
        for (unsigned i = 0; i < p; ++i)
            r = static_cast<std::uint8_t>((r << 1) ^ ((r & 0x80) ? poly : 0));
        assert(r != 0);
        assert(singleBitPos_[r] == 0 &&
               "CRC8-ATM single-bit syndromes must be distinct for SEC");
        singleBitPos_[r] = static_cast<std::uint8_t>(p + 1);
    }

    nib_ = detail::makeNibbleTables(slice_);
}

Word72
Crc8Atm::encode(std::uint64_t data) const
{
    const std::uint8_t check = crc(data);
    Word72 word;
    // Positions 71..8 = data bits 63..0; positions 7..0 = CRC.
    word.hi = static_cast<std::uint8_t>(data >> 56);
    word.lo = (data << 8) | check;
    return word;
}

std::size_t
Crc8Atm::detectMany(std::span<const Word72> received) const
{
    const SimdLevel level = simdLevel();
    if (level != SimdLevel::Scalar)
        return detail::detectManySimd(level, nib_, received);
    std::size_t detected = 0;
    for (const Word72 &word : received)
        detected += syndrome(word) != 0;
    return detected;
}

void
Crc8Atm::syndromeManySoa(const std::uint8_t *planes, std::size_t stride,
                         std::size_t count, std::uint8_t *out) const
{
    detail::syndromeManySoaSimd(simdLevel(), nib_, planes, stride, count,
                                out);
}

DecodeResult
Crc8Atm::decode(const Word72 &received) const
{
    DecodeResult result;
    const std::uint8_t s = syndrome(received);
    if (s == 0) {
        result.status = DecodeStatus::NoError;
        result.data = extractData(received);
        return result;
    }
    if (singleBitPos_[s] != 0) {
        Word72 fixed = received;
        const unsigned pos = static_cast<unsigned>(singleBitPos_[s]) - 1;
        fixed.flip(pos);
        result.status = DecodeStatus::CorrectedSingle;
        result.correctedBit = static_cast<int>(pos);
        result.data = extractData(fixed);
        return result;
    }
    result.status = DecodeStatus::DetectedUncorrectable;
    result.data = extractData(received);
    return result;
}

} // namespace xed::ecc
