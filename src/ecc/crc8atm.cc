#include "ecc/crc8atm.hh"

#include <cassert>

namespace xed::ecc
{

Crc8Atm::Crc8Atm()
{
    // MSB-first byte table.
    for (unsigned b = 0; b < 256; ++b) {
        std::uint8_t r = static_cast<std::uint8_t>(b);
        for (int i = 0; i < 8; ++i)
            r = static_cast<std::uint8_t>((r << 1) ^ ((r & 0x80) ? poly : 0));
        table_[b] = r;
    }

    // Syndrome of a single-bit error at codeword position p (degree p
    // coefficient): x^p mod g(x).
    singleBitPos_.fill(0);
    for (unsigned p = 0; p < codeLength; ++p) {
        std::uint8_t r = 1; // x^0
        for (unsigned i = 0; i < p; ++i)
            r = static_cast<std::uint8_t>((r << 1) ^ ((r & 0x80) ? poly : 0));
        assert(r != 0);
        assert(singleBitPos_[r] == 0 &&
               "CRC8-ATM single-bit syndromes must be distinct for SEC");
        singleBitPos_[r] = static_cast<std::uint8_t>(p + 1);
    }
}

std::uint8_t
Crc8Atm::crc(std::uint64_t data) const
{
    // Process the 64 data bits MSB-first; the implicit * x^8 shift is
    // provided by the table formulation.
    std::uint8_t r = 0;
    for (int byte = 7; byte >= 0; --byte)
        r = table_[r ^ static_cast<std::uint8_t>(data >> (8 * byte))];
    return r;
}

Word72
Crc8Atm::encode(std::uint64_t data) const
{
    const std::uint8_t check = crc(data);
    Word72 word;
    // Positions 71..8 = data bits 63..0; positions 7..0 = CRC.
    word.hi = static_cast<std::uint8_t>(data >> 56);
    word.lo = (data << 8) | check;
    return word;
}

std::uint64_t
Crc8Atm::extractData(const Word72 &word) const
{
    return (static_cast<std::uint64_t>(word.hi) << 56) | (word.lo >> 8);
}

std::uint8_t
Crc8Atm::syndrome(const Word72 &received) const
{
    // The received 72-bit polynomial is valid iff divisible by g(x).
    // Equivalently: CRC(data) ^ receivedCheck, since the code is
    // systematic.
    return static_cast<std::uint8_t>(crc(extractData(received)) ^
                                     (received.lo & 0xFF));
}

bool
Crc8Atm::isValidCodeword(const Word72 &received) const
{
    return syndrome(received) == 0;
}

DecodeResult
Crc8Atm::decode(const Word72 &received) const
{
    DecodeResult result;
    const std::uint8_t s = syndrome(received);
    if (s == 0) {
        result.status = DecodeStatus::NoError;
        result.data = extractData(received);
        return result;
    }
    if (singleBitPos_[s] != 0) {
        Word72 fixed = received;
        const unsigned pos = static_cast<unsigned>(singleBitPos_[s]) - 1;
        fixed.flip(pos);
        result.status = DecodeStatus::CorrectedSingle;
        result.correctedBit = static_cast<int>(pos);
        result.data = extractData(fixed);
        return result;
    }
    result.status = DecodeStatus::DetectedUncorrectable;
    result.data = extractData(received);
    return result;
}

} // namespace xed::ecc
