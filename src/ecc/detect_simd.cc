#include "ecc/detect_simd.hh"

#include <stdexcept>

#if defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace xed::ecc::detail
{

namespace
{

// The vector loads read Word72s as raw 16-byte blocks: positions 0..7
// are the lo bytes, position 8 is hi, positions 9..15 are padding the
// kernels transpose but never look up.
static_assert(sizeof(Word72) == 16,
              "detect kernels assume a 16-byte Word72 layout");
static_assert(offsetof(Word72, lo) == 0 && offsetof(Word72, hi) == 8,
              "detect kernels assume lo at offset 0, hi at offset 8");

/** Scalar loop over the nibble tables (tails + the Scalar level).
 *  Bit-identical to the byte-table loop: the split is exact. */
std::size_t
detectScalar(const SecdedNibbleTables &t, const Word72 *words,
             std::size_t n)
{
    std::size_t invalid = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t lo = words[i].lo;
        std::uint8_t s = 0;
        for (unsigned lane = 0; lane < 8; ++lane) {
            const unsigned b = static_cast<unsigned>(lo & 0xFF);
            s ^= t.lo[lane][b & 0x0F] ^ t.hi[lane][b >> 4];
            lo >>= 8;
        }
        const unsigned b = words[i].hi;
        s ^= t.lo[8][b & 0x0F] ^ t.hi[8][b >> 4];
        invalid += s != 0;
    }
    return invalid;
}

/** Scalar plane-major syndrome loop (tails + the Scalar level). */
void
syndromeSoaScalar(const SecdedNibbleTables &t, const std::uint8_t *planes,
                  std::size_t stride, std::size_t count, std::uint8_t *out)
{
    for (std::size_t c = 0; c < count; ++c) {
        std::uint8_t s = 0;
        for (unsigned lane = 0; lane < 9; ++lane) {
            const unsigned b = planes[lane * stride + c];
            s ^= t.lo[lane][b & 0x0F] ^ t.hi[lane][b >> 4];
        }
        out[c] = s;
    }
}

#if defined(__x86_64__)

/**
 * AVX2 plane-major syndromes: 32 words per block, no unpack network
 * (the input is already slice-major), 18 vpshufb per block. @p n must
 * be a multiple of 32.
 */
__attribute__((target("avx2"))) void
syndromeSoaBlocksAvx2(const SecdedNibbleTables &t,
                      const std::uint8_t *planes, std::size_t stride,
                      std::size_t n, std::uint8_t *out)
{
    __m256i tabLo[9], tabHi[9];
    for (int s = 0; s < 9; ++s) {
        tabLo[s] = _mm256_broadcastsi128_si256(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.lo[s])));
        tabHi[s] = _mm256_broadcastsi128_si256(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.hi[s])));
    }
    const __m256i nibMask = _mm256_set1_epi8(0x0F);
    for (std::size_t c = 0; c < n; c += 32) {
        __m256i acc = _mm256_setzero_si256();
        for (int s = 0; s < 9; ++s) {
            const __m256i bytes = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(planes + s * stride +
                                                  c));
            const __m256i loNib = _mm256_and_si256(bytes, nibMask);
            const __m256i hiNib = _mm256_and_si256(
                _mm256_srli_epi16(bytes, 4), nibMask);
            acc = _mm256_xor_si256(
                acc,
                _mm256_xor_si256(_mm256_shuffle_epi8(tabLo[s], loNib),
                                 _mm256_shuffle_epi8(tabHi[s], hiNib)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + c), acc);
    }
}

/** AVX-512 plane-major syndromes: 64 words per block. */
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) void
syndromeSoaBlocksAvx512(const SecdedNibbleTables &t,
                        const std::uint8_t *planes, std::size_t stride,
                        std::size_t n, std::uint8_t *out)
{
    __m512i tabLo[9], tabHi[9];
    for (int s = 0; s < 9; ++s) {
        tabLo[s] = _mm512_broadcast_i32x4(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.lo[s])));
        tabHi[s] = _mm512_broadcast_i32x4(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.hi[s])));
    }
    const __m512i nibMask = _mm512_set1_epi8(0x0F);
    for (std::size_t c = 0; c < n; c += 64) {
        __m512i acc = _mm512_setzero_si512();
        for (int s = 0; s < 9; ++s) {
            const __m512i bytes = _mm512_loadu_si512(
                reinterpret_cast<const void *>(planes + s * stride + c));
            const __m512i loNib = _mm512_and_si512(bytes, nibMask);
            const __m512i hiNib = _mm512_and_si512(
                _mm512_srli_epi16(bytes, 4), nibMask);
            acc = _mm512_xor_si512(
                acc,
                _mm512_xor_si512(_mm512_shuffle_epi8(tabLo[s], loNib),
                                 _mm512_shuffle_epi8(tabHi[s], hiNib)));
        }
        _mm512_storeu_si512(reinterpret_cast<void *>(out + c), acc);
    }
}

/**
 * AVX2: 32 words (512 bytes) per block. A 4-layer unpack network
 * turns 16 row registers into nine 32-byte slice registers (slice s =
 * byte s of 32 words, in a permutation that is identical across
 * slices and irrelevant to the count); each slice then costs two
 * vpshufb nibble lookups, and one cmpeq+movemask+popcount counts the
 * zero syndromes. @p n must be a multiple of 32.
 */
__attribute__((target("avx2"))) std::size_t
detectBlocksAvx2(const SecdedNibbleTables &t, const Word72 *words,
                 std::size_t n)
{
    __m256i tabLo[9], tabHi[9];
    for (int s = 0; s < 9; ++s) {
        tabLo[s] = _mm256_broadcastsi128_si256(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.lo[s])));
        tabHi[s] = _mm256_broadcastsi128_si256(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.hi[s])));
    }
    const __m256i nibMask = _mm256_set1_epi8(0x0F);
    const __m256i zero = _mm256_setzero_si256();

    std::size_t invalid = 0;
    for (std::size_t i = 0; i < n; i += 32) {
        const unsigned char *base =
            reinterpret_cast<const unsigned char *>(words + i);
        __m256i a[16];
        for (int j = 0; j < 16; ++j)
            a[j] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(base + 32 * j));

        // Each 128-bit lane of a[j] is one word's 16 bytes: byte k
        // carries position tag k (8 = hi, 9..15 = padding). Every
        // unpack below interleaves two registers with identical tag
        // patterns, so tags pair up layer by layer until each
        // register holds a single tag -- one full byte slice.
        __m256i l1lo[8], l1hi[8];
        for (int j = 0; j < 8; ++j) {
            l1lo[j] = _mm256_unpacklo_epi8(a[2 * j], a[2 * j + 1]);
            l1hi[j] = _mm256_unpackhi_epi8(a[2 * j], a[2 * j + 1]);
        }
        // l2[0..3] tags 0..3, l2[4..7] tags 4..7, l2[8..11] tags 8..11
        // (the 12..15 side is padding and never computed).
        __m256i l2[12];
        for (int j = 0; j < 4; ++j) {
            l2[j] = _mm256_unpacklo_epi16(l1lo[2 * j], l1lo[2 * j + 1]);
            l2[4 + j] =
                _mm256_unpackhi_epi16(l1lo[2 * j], l1lo[2 * j + 1]);
            l2[8 + j] =
                _mm256_unpacklo_epi16(l1hi[2 * j], l1hi[2 * j + 1]);
        }
        __m256i l3[10];
        for (int g = 0; g < 2; ++g) {
            l3[4 * g + 0] =
                _mm256_unpacklo_epi32(l2[4 * g + 0], l2[4 * g + 1]);
            l3[4 * g + 1] =
                _mm256_unpacklo_epi32(l2[4 * g + 2], l2[4 * g + 3]);
            l3[4 * g + 2] =
                _mm256_unpackhi_epi32(l2[4 * g + 0], l2[4 * g + 1]);
            l3[4 * g + 3] =
                _mm256_unpackhi_epi32(l2[4 * g + 2], l2[4 * g + 3]);
        }
        l3[8] = _mm256_unpacklo_epi32(l2[8], l2[9]);
        l3[9] = _mm256_unpacklo_epi32(l2[10], l2[11]);
        __m256i slice[9];
        slice[0] = _mm256_unpacklo_epi64(l3[0], l3[1]);
        slice[1] = _mm256_unpackhi_epi64(l3[0], l3[1]);
        slice[2] = _mm256_unpacklo_epi64(l3[2], l3[3]);
        slice[3] = _mm256_unpackhi_epi64(l3[2], l3[3]);
        slice[4] = _mm256_unpacklo_epi64(l3[4], l3[5]);
        slice[5] = _mm256_unpackhi_epi64(l3[4], l3[5]);
        slice[6] = _mm256_unpacklo_epi64(l3[6], l3[7]);
        slice[7] = _mm256_unpackhi_epi64(l3[6], l3[7]);
        slice[8] = _mm256_unpacklo_epi64(l3[8], l3[9]);

        __m256i acc = zero;
        for (int s = 0; s < 9; ++s) {
            const __m256i loNib = _mm256_and_si256(slice[s], nibMask);
            const __m256i hiNib = _mm256_and_si256(
                _mm256_srli_epi16(slice[s], 4), nibMask);
            acc = _mm256_xor_si256(
                acc,
                _mm256_xor_si256(_mm256_shuffle_epi8(tabLo[s], loNib),
                                 _mm256_shuffle_epi8(tabHi[s], hiNib)));
        }
        const unsigned valid = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(acc, zero)));
        invalid += 32u - static_cast<unsigned>(__builtin_popcount(valid));
    }
    return invalid;
}

/**
 * AVX-512 (F+BW+DQ+VL): the same network at 64 words (1 KiB) per
 * block -- the unpacks and vpshufb operate per 128-bit lane, so the
 * tag algebra is unchanged -- with the zero count taken straight from
 * the cmpeq mask register. @p n must be a multiple of 64.
 */
// GCC's _mm512_undefined_epi32() (used inside the unpack intrinsics)
// trips -Wmaybe-uninitialized; the value is overwritten by the masked
// builtin, so the warning is a known header false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))
std::size_t
detectBlocksAvx512(const SecdedNibbleTables &t, const Word72 *words,
                   std::size_t n)
{
    __m512i tabLo[9], tabHi[9];
    for (int s = 0; s < 9; ++s) {
        tabLo[s] = _mm512_broadcast_i32x4(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.lo[s])));
        tabHi[s] = _mm512_broadcast_i32x4(
            _mm_load_si128(reinterpret_cast<const __m128i *>(t.hi[s])));
    }
    const __m512i nibMask = _mm512_set1_epi8(0x0F);
    const __m512i zero = _mm512_setzero_si512();

    std::size_t invalid = 0;
    for (std::size_t i = 0; i < n; i += 64) {
        const unsigned char *base =
            reinterpret_cast<const unsigned char *>(words + i);
        __m512i a[16];
        for (int j = 0; j < 16; ++j)
            a[j] = _mm512_loadu_si512(
                reinterpret_cast<const void *>(base + 64 * j));

        __m512i l1lo[8], l1hi[8];
        for (int j = 0; j < 8; ++j) {
            l1lo[j] = _mm512_unpacklo_epi8(a[2 * j], a[2 * j + 1]);
            l1hi[j] = _mm512_unpackhi_epi8(a[2 * j], a[2 * j + 1]);
        }
        __m512i l2[12];
        for (int j = 0; j < 4; ++j) {
            l2[j] = _mm512_unpacklo_epi16(l1lo[2 * j], l1lo[2 * j + 1]);
            l2[4 + j] =
                _mm512_unpackhi_epi16(l1lo[2 * j], l1lo[2 * j + 1]);
            l2[8 + j] =
                _mm512_unpacklo_epi16(l1hi[2 * j], l1hi[2 * j + 1]);
        }
        __m512i l3[10];
        for (int g = 0; g < 2; ++g) {
            l3[4 * g + 0] =
                _mm512_unpacklo_epi32(l2[4 * g + 0], l2[4 * g + 1]);
            l3[4 * g + 1] =
                _mm512_unpacklo_epi32(l2[4 * g + 2], l2[4 * g + 3]);
            l3[4 * g + 2] =
                _mm512_unpackhi_epi32(l2[4 * g + 0], l2[4 * g + 1]);
            l3[4 * g + 3] =
                _mm512_unpackhi_epi32(l2[4 * g + 2], l2[4 * g + 3]);
        }
        l3[8] = _mm512_unpacklo_epi32(l2[8], l2[9]);
        l3[9] = _mm512_unpacklo_epi32(l2[10], l2[11]);
        __m512i slice[9];
        slice[0] = _mm512_unpacklo_epi64(l3[0], l3[1]);
        slice[1] = _mm512_unpackhi_epi64(l3[0], l3[1]);
        slice[2] = _mm512_unpacklo_epi64(l3[2], l3[3]);
        slice[3] = _mm512_unpackhi_epi64(l3[2], l3[3]);
        slice[4] = _mm512_unpacklo_epi64(l3[4], l3[5]);
        slice[5] = _mm512_unpackhi_epi64(l3[4], l3[5]);
        slice[6] = _mm512_unpacklo_epi64(l3[6], l3[7]);
        slice[7] = _mm512_unpackhi_epi64(l3[6], l3[7]);
        slice[8] = _mm512_unpacklo_epi64(l3[8], l3[9]);

        __m512i acc = zero;
        for (int s = 0; s < 9; ++s) {
            const __m512i loNib = _mm512_and_si512(slice[s], nibMask);
            const __m512i hiNib = _mm512_and_si512(
                _mm512_srli_epi16(slice[s], 4), nibMask);
            acc = _mm512_xor_si512(
                acc,
                _mm512_xor_si512(_mm512_shuffle_epi8(tabLo[s], loNib),
                                 _mm512_shuffle_epi8(tabHi[s], hiNib)));
        }
        const __mmask64 valid = _mm512_cmpeq_epi8_mask(acc, zero);
        invalid += 64u - static_cast<unsigned>(__builtin_popcountll(
                             static_cast<std::uint64_t>(valid)));
    }
    return invalid;
}
#pragma GCC diagnostic pop

#elif defined(__aarch64__)

/** NEON plane-major syndromes: 16 words per block. */
void
syndromeSoaBlocksNeon(const SecdedNibbleTables &t,
                      const std::uint8_t *planes, std::size_t stride,
                      std::size_t n, std::uint8_t *out)
{
    uint8x16_t tabLo[9], tabHi[9];
    for (int s = 0; s < 9; ++s) {
        tabLo[s] = vld1q_u8(t.lo[s]);
        tabHi[s] = vld1q_u8(t.hi[s]);
    }
    const uint8x16_t nibMask = vdupq_n_u8(0x0F);
    for (std::size_t c = 0; c < n; c += 16) {
        uint8x16_t acc = vdupq_n_u8(0);
        for (int s = 0; s < 9; ++s) {
            const uint8x16_t bytes = vld1q_u8(planes + s * stride + c);
            const uint8x16_t loNib = vandq_u8(bytes, nibMask);
            const uint8x16_t hiNib = vshrq_n_u8(bytes, 4);
            acc = veorq_u8(acc,
                           veorq_u8(vqtbl1q_u8(tabLo[s], loNib),
                                    vqtbl1q_u8(tabHi[s], hiNib)));
        }
        vst1q_u8(out + c, acc);
    }
}

/**
 * NEON: 16 words per block, one q-register per word (tags 0..15), the
 * same 4-layer network with full-width zips, tbl nibble lookups and a
 * horizontal add of the zero-syndrome lanes. @p n must be a multiple
 * of 16.
 */
std::size_t
detectBlocksNeon(const SecdedNibbleTables &t, const Word72 *words,
                 std::size_t n)
{
    uint8x16_t tabLo[9], tabHi[9];
    for (int s = 0; s < 9; ++s) {
        tabLo[s] = vld1q_u8(t.lo[s]);
        tabHi[s] = vld1q_u8(t.hi[s]);
    }
    const uint8x16_t nibMask = vdupq_n_u8(0x0F);

    const auto zip1b16 = [](uint8x16_t a, uint8x16_t b) {
        return vreinterpretq_u8_u16(vzip1q_u16(
            vreinterpretq_u16_u8(a), vreinterpretq_u16_u8(b)));
    };
    const auto zip2b16 = [](uint8x16_t a, uint8x16_t b) {
        return vreinterpretq_u8_u16(vzip2q_u16(
            vreinterpretq_u16_u8(a), vreinterpretq_u16_u8(b)));
    };
    const auto zip1b32 = [](uint8x16_t a, uint8x16_t b) {
        return vreinterpretq_u8_u32(vzip1q_u32(
            vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b)));
    };
    const auto zip2b32 = [](uint8x16_t a, uint8x16_t b) {
        return vreinterpretq_u8_u32(vzip2q_u32(
            vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b)));
    };
    const auto zip1b64 = [](uint8x16_t a, uint8x16_t b) {
        return vreinterpretq_u8_u64(vzip1q_u64(
            vreinterpretq_u64_u8(a), vreinterpretq_u64_u8(b)));
    };
    const auto zip2b64 = [](uint8x16_t a, uint8x16_t b) {
        return vreinterpretq_u8_u64(vzip2q_u64(
            vreinterpretq_u64_u8(a), vreinterpretq_u64_u8(b)));
    };

    std::size_t invalid = 0;
    for (std::size_t i = 0; i < n; i += 16) {
        const std::uint8_t *base =
            reinterpret_cast<const std::uint8_t *>(words + i);
        uint8x16_t a[16];
        for (int j = 0; j < 16; ++j)
            a[j] = vld1q_u8(base + 16 * j);

        uint8x16_t l1lo[8], l1hi[8];
        for (int j = 0; j < 8; ++j) {
            l1lo[j] = vzip1q_u8(a[2 * j], a[2 * j + 1]);
            l1hi[j] = vzip2q_u8(a[2 * j], a[2 * j + 1]);
        }
        uint8x16_t l2[12];
        for (int j = 0; j < 4; ++j) {
            l2[j] = zip1b16(l1lo[2 * j], l1lo[2 * j + 1]);
            l2[4 + j] = zip2b16(l1lo[2 * j], l1lo[2 * j + 1]);
            l2[8 + j] = zip1b16(l1hi[2 * j], l1hi[2 * j + 1]);
        }
        uint8x16_t l3[10];
        for (int g = 0; g < 2; ++g) {
            l3[4 * g + 0] = zip1b32(l2[4 * g + 0], l2[4 * g + 1]);
            l3[4 * g + 1] = zip1b32(l2[4 * g + 2], l2[4 * g + 3]);
            l3[4 * g + 2] = zip2b32(l2[4 * g + 0], l2[4 * g + 1]);
            l3[4 * g + 3] = zip2b32(l2[4 * g + 2], l2[4 * g + 3]);
        }
        l3[8] = zip1b32(l2[8], l2[9]);
        l3[9] = zip1b32(l2[10], l2[11]);
        uint8x16_t slice[9];
        slice[0] = zip1b64(l3[0], l3[1]);
        slice[1] = zip2b64(l3[0], l3[1]);
        slice[2] = zip1b64(l3[2], l3[3]);
        slice[3] = zip2b64(l3[2], l3[3]);
        slice[4] = zip1b64(l3[4], l3[5]);
        slice[5] = zip2b64(l3[4], l3[5]);
        slice[6] = zip1b64(l3[6], l3[7]);
        slice[7] = zip2b64(l3[6], l3[7]);
        slice[8] = zip1b64(l3[8], l3[9]);

        uint8x16_t acc = vdupq_n_u8(0);
        for (int s = 0; s < 9; ++s) {
            const uint8x16_t loNib = vandq_u8(slice[s], nibMask);
            const uint8x16_t hiNib = vshrq_n_u8(slice[s], 4);
            acc = veorq_u8(
                acc, veorq_u8(vqtbl1q_u8(tabLo[s], loNib),
                              vqtbl1q_u8(tabHi[s], hiNib)));
        }
        const uint8x16_t zeroLanes = vshrq_n_u8(vceqzq_u8(acc), 7);
        invalid += 16u - vaddvq_u8(zeroLanes);
    }
    return invalid;
}

#endif

} // namespace

SecdedNibbleTables
makeNibbleTables(
    const std::array<std::array<std::uint8_t, 256>, 9> &lanes)
{
    SecdedNibbleTables t;
    for (unsigned s = 0; s < 9; ++s) {
        for (unsigned v = 0; v < 16; ++v) {
            t.lo[s][v] = lanes[s][v];
            t.hi[s][v] = lanes[s][v << 4];
        }
        for (unsigned b = 0; b < 256; ++b)
            if (static_cast<std::uint8_t>(t.lo[s][b & 0x0F] ^
                                          t.hi[s][b >> 4]) != lanes[s][b])
                throw std::logic_error(
                    "makeNibbleTables: lane table is not GF(2)-linear");
    }
    return t;
}

std::size_t
detectManySimd(SimdLevel level, const SecdedNibbleTables &t,
               std::span<const Word72> received)
{
    const Word72 *words = received.data();
    const std::size_t n = received.size();
    std::size_t blocked = 0;
    std::size_t invalid = 0;
    switch (level) {
#if defined(__x86_64__)
    case SimdLevel::Avx512:
        blocked = n & ~static_cast<std::size_t>(63);
        invalid = detectBlocksAvx512(t, words, blocked);
        break;
    case SimdLevel::Avx2:
        blocked = n & ~static_cast<std::size_t>(31);
        invalid = detectBlocksAvx2(t, words, blocked);
        break;
#elif defined(__aarch64__)
    case SimdLevel::Neon:
        blocked = n & ~static_cast<std::size_t>(15);
        invalid = detectBlocksNeon(t, words, blocked);
        break;
#endif
    default:
        break;
    }
    return invalid + detectScalar(t, words + blocked, n - blocked);
}

void
syndromeManySoaSimd(SimdLevel level, const SecdedNibbleTables &t,
                    const std::uint8_t *planes, std::size_t stride,
                    std::size_t count, std::uint8_t *out)
{
    std::size_t blocked = 0;
    switch (level) {
#if defined(__x86_64__)
    case SimdLevel::Avx512:
        blocked = count & ~static_cast<std::size_t>(63);
        syndromeSoaBlocksAvx512(t, planes, stride, blocked, out);
        break;
    case SimdLevel::Avx2:
        blocked = count & ~static_cast<std::size_t>(31);
        syndromeSoaBlocksAvx2(t, planes, stride, blocked, out);
        break;
#elif defined(__aarch64__)
    case SimdLevel::Neon:
        blocked = count & ~static_cast<std::size_t>(15);
        syndromeSoaBlocksNeon(t, planes, stride, blocked, out);
        break;
#endif
    default:
        break;
    }
    // The plane base of the tail shifts by `blocked` in every lane, so
    // the scalar loop reuses the same stride on offset pointers.
    syndromeSoaScalar(t, planes + blocked, stride, count - blocked,
                      out + blocked);
}

} // namespace xed::ecc::detail
