/**
 * @file
 * (72,64) extended Hamming SECDED code with *natural column ordering*:
 * the parity-check column of codeword position p (0-based) is the 7-bit
 * value p+1 plus an all-ones overall-parity row.
 *
 * Natural ordering matters for reproducing Table II of the paper: with
 * columns laid out as consecutive integers, any aligned burst of four
 * consecutive bit flips XORs to a zero syndrome about half the time,
 * which is exactly the ~50.7% burst-error detection rate the paper
 * reports for Hamming and the motivation for preferring CRC8-ATM.
 */

#ifndef XED_ECC_HAMMING7264_HH
#define XED_ECC_HAMMING7264_HH

#include <array>
#include <cstdint>

#include "ecc/code.hh"
#include "ecc/detect_simd.hh"

namespace xed::ecc
{

class Hamming7264 : public Secded7264
{
  public:
    Hamming7264();

    std::string name() const override { return "(72,64) Hamming"; }
    Word72 encode(std::uint64_t data) const override;
    DecodeResult decode(const Word72 &received) const override;
    bool isValidCodeword(const Word72 &received) const override;
    std::uint64_t extractData(const Word72 &word) const override;
    std::size_t detectMany(std::span<const Word72> received) const override;

    /** Plane-major batch syndromes through the nibble-table kernels;
     *  out[c] is the real 8-bit syndrome of word c. */
    void syndromeManySoa(const std::uint8_t *planes, std::size_t stride,
                         std::size_t count,
                         std::uint8_t *out) const override;

    /** 8-bit syndrome of a received word (0 iff valid). */
    std::uint8_t syndrome(const Word72 &received) const;

  private:
    /** Parity-check column of position p: (p+1) | overall-parity row. */
    static std::uint8_t
    column(unsigned p)
    {
        return static_cast<std::uint8_t>(((p + 1) & 0x7F) | 0x80);
    }

    /** Codeword positions that hold check bits (columns independent). */
    std::array<unsigned, checkLength> checkPos_{};
    /** Codeword positions that hold data bits, LSB-first. */
    std::array<unsigned, dataLength> dataPos_{};
    /** syndrome -> check-bit byte that cancels it (c = M^-1 s). */
    std::array<std::uint8_t, 256> solve_{};
    /** syndrome -> corrected codeword position + 1, or 0 if none. */
    std::array<std::uint8_t, 256> singleBitPos_{};
    /** Per-byte syndrome tables: 9 byte lanes x 256 values. */
    std::array<std::array<std::uint8_t, 256>, 9> synTable_{};
    /** Split-nibble form of synTable_ for the vector detect kernels. */
    detail::SecdedNibbleTables nib_{};
};

} // namespace xed::ecc

#endif // XED_ECC_HAMMING7264_HH
