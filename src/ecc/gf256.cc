#include "ecc/gf256.hh"

namespace xed::ecc
{

GF256::GF256()
{
    unsigned x = 1;
    for (unsigned i = 0; i < groupOrder; ++i) {
        exp_[i] = static_cast<std::uint8_t>(x);
        log_[x] = i;
        x <<= 1;
        if (x & 0x100)
            x ^= fieldPoly;
    }
    exp_[groupOrder] = exp_[0];
    log_[0] = 0; // unused; callers must not take log of zero
}

const GF256 &
GF256::instance()
{
    static const GF256 field;
    return field;
}

} // namespace xed::ecc
