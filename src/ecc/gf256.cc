#include "ecc/gf256.hh"

namespace xed::ecc
{

GF256::GF256()
{
    unsigned x = 1;
    for (unsigned i = 0; i < groupOrder; ++i) {
        exp_[i] = static_cast<std::uint8_t>(x);
        log_[x] = i;
        x <<= 1;
        if (x & 0x100)
            x ^= fieldPoly;
    }
    exp_[groupOrder] = exp_[0];
    log_[0] = 0; // unused; callers must not take log of zero

    // Full product table from the log/exp pair. Row 0 and column 0
    // stay zero from value-initialization.
    for (unsigned a = 1; a < 256; ++a)
        for (unsigned b = 1; b < 256; ++b)
            mul_[a][b] = exp_[(log_[a] + log_[b]) % groupOrder];
}

const GF256 &
GF256::instance()
{
    static const GF256 field;
    return field;
}

} // namespace xed::ecc
