#include "ecc/gf256.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace xed::ecc
{

namespace
{

/** Scalar tail shared by every kernel: the nibble split is exact, so
 *  this matches both the mulRowPtr() loop and the vector bodies. */
inline void
mulConstTail(const std::uint8_t *lo, const std::uint8_t *hi,
             const std::uint8_t *src, std::uint8_t *dst, std::size_t n,
             bool accumulate)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t b = src[i];
        const std::uint8_t p =
            static_cast<std::uint8_t>(lo[b & 0x0F] ^ hi[b >> 4]);
        dst[i] = accumulate ? static_cast<std::uint8_t>(dst[i] ^ p) : p;
    }
}

#if defined(__x86_64__)

__attribute__((target("avx2"))) void
mulConstAvx2(const std::uint8_t *lo, const std::uint8_t *hi,
             const std::uint8_t *src, std::uint8_t *dst, std::size_t n,
             bool accumulate)
{
    const __m256i tlo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(lo)));
    const __m256i thi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(hi)));
    const __m256i mask = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i p = _mm256_xor_si256(
            _mm256_shuffle_epi8(tlo, _mm256_and_si256(v, mask)),
            _mm256_shuffle_epi8(
                thi, _mm256_and_si256(_mm256_srli_epi16(v, 4), mask)));
        if (accumulate)
            p = _mm256_xor_si256(
                p, _mm256_loadu_si256(
                       reinterpret_cast<const __m256i *>(dst + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), p);
    }
    mulConstTail(lo, hi, src + i, dst + i, n - i, accumulate);
}

// _mm512_undefined_epi32() inside the GCC intrinsic headers trips
// -Wuninitialized; the value is fully overwritten, known false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) void
mulConstAvx512(const std::uint8_t *lo, const std::uint8_t *hi,
               const std::uint8_t *src, std::uint8_t *dst, std::size_t n,
               bool accumulate)
{
    const __m512i tlo = _mm512_broadcast_i32x4(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(lo)));
    const __m512i thi = _mm512_broadcast_i32x4(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(hi)));
    const __m512i mask = _mm512_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m512i v = _mm512_loadu_si512(
            reinterpret_cast<const void *>(src + i));
        __m512i p = _mm512_xor_si512(
            _mm512_shuffle_epi8(tlo, _mm512_and_si512(v, mask)),
            _mm512_shuffle_epi8(
                thi, _mm512_and_si512(_mm512_srli_epi16(v, 4), mask)));
        if (accumulate)
            p = _mm512_xor_si512(
                p, _mm512_loadu_si512(
                       reinterpret_cast<const void *>(dst + i)));
        _mm512_storeu_si512(reinterpret_cast<void *>(dst + i), p);
    }
    mulConstTail(lo, hi, src + i, dst + i, n - i, accumulate);
}
#pragma GCC diagnostic pop

#elif defined(__aarch64__)

void
mulConstNeon(const std::uint8_t *lo, const std::uint8_t *hi,
             const std::uint8_t *src, std::uint8_t *dst, std::size_t n,
             bool accumulate)
{
    const uint8x16_t tlo = vld1q_u8(lo);
    const uint8x16_t thi = vld1q_u8(hi);
    const uint8x16_t mask = vdupq_n_u8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t v = vld1q_u8(src + i);
        uint8x16_t p = veorq_u8(vqtbl1q_u8(tlo, vandq_u8(v, mask)),
                                vqtbl1q_u8(thi, vshrq_n_u8(v, 4)));
        if (accumulate)
            p = veorq_u8(p, vld1q_u8(dst + i));
        vst1q_u8(dst + i, p);
    }
    mulConstTail(lo, hi, src + i, dst + i, n - i, accumulate);
}

#endif

} // namespace

GF256::GF256()
{
    unsigned x = 1;
    for (unsigned i = 0; i < groupOrder; ++i) {
        exp_[i] = static_cast<std::uint8_t>(x);
        log_[x] = i;
        x <<= 1;
        if (x & 0x100)
            x ^= fieldPoly;
    }
    exp_[groupOrder] = exp_[0];
    log_[0] = 0; // unused; callers must not take log of zero

    // Full product table from the log/exp pair. Row 0 and column 0
    // stay zero from value-initialization.
    for (unsigned a = 1; a < 256; ++a)
        for (unsigned b = 1; b < 256; ++b)
            mul_[a][b] = exp_[(log_[a] + log_[b]) % groupOrder];

    // Split-nibble rows for the vector constant-multiplier kernels.
    for (unsigned c = 0; c < 256; ++c)
        for (unsigned v = 0; v < 16; ++v) {
            nibLo_[c][v] = mul_[c][v];
            nibHi_[c][v] = mul_[c][v << 4];
        }
}

void
GF256::mulConstInto(std::uint8_t c, const std::uint8_t *src,
                    std::uint8_t *dst, std::size_t n) const
{
    const std::uint8_t *lo = nibLo_[c].data();
    const std::uint8_t *hi = nibHi_[c].data();
    switch (simdLevel()) {
#if defined(__x86_64__)
    case SimdLevel::Avx512:
        mulConstAvx512(lo, hi, src, dst, n, false);
        return;
    case SimdLevel::Avx2:
        mulConstAvx2(lo, hi, src, dst, n, false);
        return;
#elif defined(__aarch64__)
    case SimdLevel::Neon:
        mulConstNeon(lo, hi, src, dst, n, false);
        return;
#endif
    default:
        break;
    }
    const std::uint8_t *row = mulRowPtr(c);
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = row[src[i]];
}

void
GF256::mulConstXorInto(std::uint8_t c, const std::uint8_t *src,
                       std::uint8_t *dst, std::size_t n) const
{
    const std::uint8_t *lo = nibLo_[c].data();
    const std::uint8_t *hi = nibHi_[c].data();
    switch (simdLevel()) {
#if defined(__x86_64__)
    case SimdLevel::Avx512:
        mulConstAvx512(lo, hi, src, dst, n, true);
        return;
    case SimdLevel::Avx2:
        mulConstAvx2(lo, hi, src, dst, n, true);
        return;
#elif defined(__aarch64__)
    case SimdLevel::Neon:
        mulConstNeon(lo, hi, src, dst, n, true);
        return;
#endif
    default:
        break;
    }
    const std::uint8_t *row = mulRowPtr(c);
    for (std::size_t i = 0; i < n; ++i)
        dst[i] ^= row[src[i]];
}

const GF256 &
GF256::instance()
{
    static const GF256 field;
    return field;
}

} // namespace xed::ecc
