/**
 * @file
 * (72,64) CRC8-ATM code: g(x) = x^8 + x^2 + x + 1 (the ATM HEC
 * polynomial, ITU-T I.432.1). The paper recommends this code for On-Die
 * ECC (Section V-E): it provides the same SECDED capability as Hamming
 * (single-bit correction via a syndrome lookup) but detects *all* burst
 * errors of length <= 8 and ~99.22% of random even-weight errors, since
 * (x+1) divides g(x).
 *
 * Codeword layout (polynomial convention): data bit 63 is the
 * highest-degree coefficient (codeword position 71), the 8 CRC bits
 * occupy positions 7..0.
 */

#ifndef XED_ECC_CRC8ATM_HH
#define XED_ECC_CRC8ATM_HH

#include <array>
#include <cstdint>

#include "ecc/code.hh"

namespace xed::ecc
{

class Crc8Atm : public Secded7264
{
  public:
    /** The ATM HEC generator polynomial, x^8+x^2+x+1, low byte. */
    static constexpr std::uint8_t poly = 0x07;

    Crc8Atm();

    std::string name() const override { return "(72,64) CRC8-ATM"; }
    Word72 encode(std::uint64_t data) const override;
    DecodeResult decode(const Word72 &received) const override;
    bool isValidCodeword(const Word72 &received) const override;
    std::uint64_t extractData(const Word72 &word) const override;

    /** Remainder of the received polynomial mod g (0 iff valid). */
    std::uint8_t syndrome(const Word72 &received) const;

    /** CRC of the 64 data bits (the check byte of the codeword). */
    std::uint8_t crc(std::uint64_t data) const;

  private:
    /** Byte-at-a-time CRC table: table_[b] = (b(x) * x^8) mod g(x). */
    std::array<std::uint8_t, 256> table_{};
    /** syndrome -> codeword position + 1, or 0 if not a 1-bit pattern. */
    std::array<std::uint8_t, 256> singleBitPos_{};
};

} // namespace xed::ecc

#endif // XED_ECC_CRC8ATM_HH
