/**
 * @file
 * (72,64) CRC8-ATM code: g(x) = x^8 + x^2 + x + 1 (the ATM HEC
 * polynomial, ITU-T I.432.1). The paper recommends this code for On-Die
 * ECC (Section V-E): it provides the same SECDED capability as Hamming
 * (single-bit correction via a syndrome lookup) but detects *all* burst
 * errors of length <= 8 and ~99.22% of random even-weight errors, since
 * (x+1) divides g(x).
 *
 * Codeword layout (polynomial convention): data bit 63 is the
 * highest-degree coefficient (codeword position 71), the 8 CRC bits
 * occupy positions 7..0.
 *
 * The syndrome is computed with slice-by-8 tables: slice_[k][b] is the
 * remainder of b(x) * x^{8k} mod g(x), so the 72-bit remainder is the
 * XOR of 9 independent table lookups (one per byte lane) instead of a
 * dependent 8-step byte-at-a-time chain.
 */

#ifndef XED_ECC_CRC8ATM_HH
#define XED_ECC_CRC8ATM_HH

#include <array>
#include <cstdint>

#include "ecc/code.hh"
#include "ecc/detect_simd.hh"

namespace xed::ecc
{

class Crc8Atm : public Secded7264
{
  public:
    /** The ATM HEC generator polynomial, x^8+x^2+x+1, low byte. */
    static constexpr std::uint8_t poly = 0x07;

    Crc8Atm();

    std::string name() const override { return "(72,64) CRC8-ATM"; }
    Word72 encode(std::uint64_t data) const override;
    DecodeResult decode(const Word72 &received) const override;

    bool
    isValidCodeword(const Word72 &received) const override
    {
        return syndrome(received) == 0;
    }

    std::uint64_t
    extractData(const Word72 &word) const override
    {
        return (static_cast<std::uint64_t>(word.hi) << 56) | (word.lo >> 8);
    }

    std::size_t detectMany(std::span<const Word72> received) const override;

    /** Plane-major batch syndromes through the nibble-table kernels;
     *  out[c] is the real CRC syndrome of word c. */
    void syndromeManySoa(const std::uint8_t *planes, std::size_t stride,
                         std::size_t count,
                         std::uint8_t *out) const override;

    /** Remainder of the received polynomial mod g (0 iff valid). */
    std::uint8_t
    syndrome(const Word72 &received) const
    {
        // Codeword byte lane j sits at degrees 8j..8j+7: lo bytes cover
        // lanes 0..7 (lane 0 being the check byte), hi is lane 8. Nine
        // independent loads, no carried dependency.
        const std::uint64_t lo = received.lo;
        return static_cast<std::uint8_t>(
            slice_[0][lo & 0xFF] ^ slice_[1][(lo >> 8) & 0xFF] ^
            slice_[2][(lo >> 16) & 0xFF] ^ slice_[3][(lo >> 24) & 0xFF] ^
            slice_[4][(lo >> 32) & 0xFF] ^ slice_[5][(lo >> 40) & 0xFF] ^
            slice_[6][(lo >> 48) & 0xFF] ^ slice_[7][lo >> 56] ^
            slice_[8][received.hi]);
    }

    /** CRC of the 64 data bits (the check byte of the codeword). */
    std::uint8_t
    crc(std::uint64_t data) const
    {
        // data(x) * x^8 mod g: data byte lane k contributes at degree
        // 8k + 8, i.e. through slice k+1.
        return static_cast<std::uint8_t>(
            slice_[1][data & 0xFF] ^ slice_[2][(data >> 8) & 0xFF] ^
            slice_[3][(data >> 16) & 0xFF] ^ slice_[4][(data >> 24) & 0xFF] ^
            slice_[5][(data >> 32) & 0xFF] ^ slice_[6][(data >> 40) & 0xFF] ^
            slice_[7][(data >> 48) & 0xFF] ^ slice_[8][data >> 56]);
    }

  private:
    /** Byte-at-a-time CRC table: table_[b] = (b(x) * x^8) mod g(x). */
    std::array<std::uint8_t, 256> table_{};
    /** Slice tables: slice_[k][b] = (b(x) * x^{8k}) mod g(x). */
    std::array<std::array<std::uint8_t, 256>, 9> slice_{};
    /** syndrome -> codeword position + 1, or 0 if not a 1-bit pattern. */
    std::array<std::uint8_t, 256> singleBitPos_{};
    /** Split-nibble form of slice_ for the vector detect kernels. */
    detail::SecdedNibbleTables nib_{};
};

} // namespace xed::ecc

#endif // XED_ECC_CRC8ATM_HH
