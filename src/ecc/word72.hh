/**
 * @file
 * A 72-bit word: the unit protected by the paper's (72,64) codes.
 *
 * Both the on-die ECC word (64 data bits + 8 check bits inside one DRAM
 * chip) and the DIMM-level SECDED beat (64 data bits across 8 chips + 8
 * check bits on the 9th chip) are 72 bits wide, so this type is shared by
 * every codec in the library.
 */

#ifndef XED_ECC_WORD72_HH
#define XED_ECC_WORD72_HH

#include <cstdint>

#include "common/bitops.hh"

namespace xed::ecc
{

/** 72 bits: positions 0..63 in lo, positions 64..71 in hi. */
struct Word72
{
    std::uint64_t lo = 0;
    std::uint8_t hi = 0;

    int
    bit(unsigned pos) const
    {
        return pos < 64 ? getBit(lo, pos) : getBit(hi, pos - 64);
    }

    void
    setBitTo(unsigned pos, int value)
    {
        if (pos < 64)
            lo = setBit(lo, pos, value);
        else
            hi = static_cast<std::uint8_t>(setBit(hi, pos - 64, value));
    }

    void
    flip(unsigned pos)
    {
        if (pos < 64)
            lo = flipBit(lo, pos);
        else
            hi = static_cast<std::uint8_t>(flipBit(hi, pos - 64));
    }

    int
    weight() const
    {
        return popcount64(lo) + popcount64(hi);
    }

    friend Word72
    operator^(const Word72 &a, const Word72 &b)
    {
        return {a.lo ^ b.lo, static_cast<std::uint8_t>(a.hi ^ b.hi)};
    }

    Word72 &
    operator^=(const Word72 &other)
    {
        lo ^= other.lo;
        hi ^= other.hi;
        return *this;
    }

    friend bool
    operator==(const Word72 &a, const Word72 &b)
    {
        return a.lo == b.lo && a.hi == b.hi;
    }

    bool
    isZero() const
    {
        return lo == 0 && hi == 0;
    }
};

/** Codeword length of the (72,64) codes. */
constexpr unsigned codeLength = 72;
/** Data length of the (72,64) codes. */
constexpr unsigned dataLength = 64;
/** Number of check bits of the (72,64) codes. */
constexpr unsigned checkLength = 8;

} // namespace xed::ecc

#endif // XED_ECC_WORD72_HH
