/**
 * @file
 * Abstract interface for the (72,64) SECDED codes used as On-Die ECC
 * (Section V-E of the paper compares Hamming and CRC8-ATM behind this
 * interface).
 */

#ifndef XED_ECC_CODE_HH
#define XED_ECC_CODE_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "ecc/word72.hh"

namespace xed::ecc
{

/** Outcome of decoding one 72-bit received word. */
enum class DecodeStatus
{
    /** Syndrome zero: the received word is a valid codeword. */
    NoError,
    /** Syndrome matched a single-bit pattern; that bit was flipped back.
     *  A multi-bit error aliasing to a single-bit syndrome shows up here
     *  as a silent mis-correction; XED still transmits a catch-word. */
    CorrectedSingle,
    /** Invalid codeword that matches no single-bit syndrome. */
    DetectedUncorrectable,
};

/** Result of decoding: status plus the (possibly corrected) data. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::NoError;
    /** Corrected 64-bit data (valid unless DetectedUncorrectable). */
    std::uint64_t data = 0;
    /** Position corrected, or -1. */
    int correctedBit = -1;

    /** True iff the decoder saw anything other than a valid codeword.
     *  This is exactly the condition under which XED's DC-Mux transmits
     *  the catch-word instead of data. */
    bool
    errorObserved() const
    {
        return status != DecodeStatus::NoError;
    }
};

/** A systematic (72,64) single-error-correcting code. */
class Secded7264
{
  public:
    virtual ~Secded7264() = default;

    /** Human-readable code name ("(72,64) Hamming", "(72,64) CRC8-ATM"). */
    virtual std::string name() const = 0;

    /** Encode 64 data bits into a 72-bit codeword. */
    virtual Word72 encode(std::uint64_t data) const = 0;

    /** Decode a received 72-bit word. */
    virtual DecodeResult decode(const Word72 &received) const = 0;

    /** True iff @p received has a zero syndrome. */
    virtual bool isValidCodeword(const Word72 &received) const = 0;

    /** Extract the data bits of a codeword without decoding. */
    virtual std::uint64_t extractData(const Word72 &word) const = 0;

    /**
     * Batched detection kernel: the number of words in @p received that
     * are NOT valid codewords. Semantically identical to looping
     * isValidCodeword(); codes override it with a branch-light
     * syndrome-only loop for the campaign hot paths. No allocation.
     */
    virtual std::size_t
    detectMany(std::span<const Word72> received) const
    {
        std::size_t detected = 0;
        for (const Word72 &word : received)
            detected += !isValidCodeword(word);
        return detected;
    }

    /**
     * Batched syndromes over a transposed (plane-major) block:
     * planes[s * stride + c] holds byte s of word c (bytes 0..7 are
     * the lo bytes LSB-first, byte 8 is hi); writes one byte per word
     * into out[c], zero iff word c is a valid codeword. Only the
     * zero/nonzero distinction is contractual (this default rebuilds
     * each word and probes isValidCodeword()); the concrete codes
     * write the real 8-bit syndrome via the slice-table vector
     * kernels. No allocation.
     */
    virtual void
    syndromeManySoa(const std::uint8_t *planes, std::size_t stride,
                    std::size_t count, std::uint8_t *out) const
    {
        for (std::size_t c = 0; c < count; ++c) {
            Word72 word;
            word.lo = 0;
            for (unsigned b = 0; b < 8; ++b)
                word.lo |=
                    static_cast<std::uint64_t>(planes[b * stride + c])
                    << (8 * b);
            word.hi = planes[8 * stride + c];
            out[c] = isValidCodeword(word) ? 0 : 1;
        }
    }
};

} // namespace xed::ecc

#endif // XED_ECC_CODE_HH
