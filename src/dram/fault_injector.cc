#include "dram/fault_injector.hh"

#include <algorithm>

namespace xed::dram
{

namespace
{

/** splitmix64: cheap stateless hash for per-word corruption patterns. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

void
FaultInjector::clearTransients()
{
    std::erase_if(faults_, [](const Fault &f) { return !f.permanent; });
}

bool
FaultInjector::faultCovers(const Fault &fault, const WordAddr &addr) const
{
    switch (fault.granularity) {
      case FaultGranularity::SingleBit:
      case FaultGranularity::SingleWord:
        return fault.addr == addr;
      case FaultGranularity::SingleColumn:
        // One column line through a bank: same bank and column, any row.
        return fault.addr.bank == addr.bank && fault.addr.col == addr.col;
      case FaultGranularity::SingleRow:
        return fault.addr.bank == addr.bank && fault.addr.row == addr.row;
      case FaultGranularity::SingleBank:
        return fault.addr.bank == addr.bank;
      case FaultGranularity::Chip:
        return true;
    }
    return false;
}

ecc::Word72
FaultInjector::faultMask(const Fault &fault, const WordAddr &addr) const
{
    ecc::Word72 mask;
    switch (fault.granularity) {
      case FaultGranularity::SingleBit:
      case FaultGranularity::SingleColumn:
        // Exactly one corrupted cell per affected word.
        mask.setBitTo(fault.bitPos % ecc::codeLength, 1);
        return mask;
      case FaultGranularity::SingleWord:
      case FaultGranularity::SingleRow:
      case FaultGranularity::SingleBank:
      case FaultGranularity::Chip: {
        // Multi-bit corruption: a pseudo-random nonzero pattern that is
        // a deterministic function of (fault seed, word address), with
        // at least two flipped bits so on-die SECDED cannot repair it.
        const std::uint64_t h =
            mix(fault.seed ^ packWordAddr(geometry_, addr));
        mask.lo = h;
        mask.hi = static_cast<std::uint8_t>(mix(h) & 0xFF);
        if (mask.weight() < 2) {
            mask.setBitTo(static_cast<unsigned>(h % ecc::codeLength), 1);
            mask.setBitTo(static_cast<unsigned>((h >> 8) % ecc::codeLength),
                          1);
            if (mask.weight() < 2)
                mask.setBitTo((static_cast<unsigned>(h % ecc::codeLength) +
                               1) % ecc::codeLength, 1);
        }
        return mask;
      }
    }
    return mask;
}

ecc::Word72
FaultInjector::corruption(const WordAddr &addr,
                          std::uint64_t wordWriteEpoch) const
{
    ecc::Word72 mask;
    for (const auto &fault : faults_) {
        if (!fault.permanent && fault.epoch <= wordWriteEpoch)
            continue; // rewritten since the transient hit
        if (faultCovers(fault, addr))
            mask ^= faultMask(fault, addr);
    }
    return mask;
}

bool
FaultInjector::touches(const WordAddr &addr) const
{
    return std::any_of(faults_.begin(), faults_.end(),
                       [&](const Fault &f) { return faultCovers(f, addr); });
}

} // namespace xed::dram
