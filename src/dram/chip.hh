/**
 * @file
 * Functional model of a DRAM chip with On-Die ECC and XED support.
 *
 * Each 64-bit word is stored as a (72,64) codeword produced by the
 * configured on-die code (CRC8-ATM by default, per Section V-E). The
 * chip implements the two XED MRS registers -- XED-Enable and the
 * Catch-Word Register (CWR) -- and the DC-Mux of Figure 3: when
 * XED-Enable is set and the on-die decoder observes anything other than
 * a valid codeword (a corrected single bit *or* a detected multi-bit
 * error), the chip transmits the catch-word instead of data.
 *
 * Storage is sparse: unwritten words hold a deterministic per-chip
 * background pattern, so a full 2Gb device can be modeled functionally
 * without materializing 2^25 words.
 */

#ifndef XED_DRAM_CHIP_HH
#define XED_DRAM_CHIP_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "dram/fault_injector.hh"
#include "dram/geometry.hh"
#include "ecc/code.hh"

namespace xed::dram
{

/** What a chip put on the bus for one word transfer. */
struct ChipReadResult
{
    /** The 64-bit value transmitted (data or catch-word). */
    std::uint64_t value = 0;
    /** True iff the DC-Mux selected the catch-word. */
    bool sentCatchWord = false;
    /**
     * Internal decoder outcome. Not visible on a real bus; exposed for
     * instrumentation and tests only.
     */
    ecc::DecodeStatus internalStatus = ecc::DecodeStatus::NoError;
};

class Chip
{
  public:
    /**
     * @param geometry device geometry (defaults match Table V)
     * @param onDieCode the (72,64) code instance; must outlive the chip
     * @param chipSeed  seeds the background data pattern
     */
    Chip(const ChipGeometry &geometry, const ecc::Secded7264 &onDieCode,
         std::uint64_t chipSeed);

    const ChipGeometry &geometry() const { return geometry_; }

    /// @name MRS-visible configuration (Section V-A)
    /// @{
    void setXedEnable(bool enable) { xedEnable_ = enable; }
    bool xedEnable() const { return xedEnable_; }
    void setCatchWord(std::uint64_t cw) { catchWord_ = cw; }
    std::uint64_t catchWord() const { return catchWord_; }
    /// @}

    /** Write a 64-bit word: on-die encode and store. */
    void write(const WordAddr &addr, std::uint64_t data);

    /** Read a word through the on-die ECC engine and the DC-Mux. */
    ChipReadResult read(const WordAddr &addr);

    /**
     * The raw 72-bit word the on-die decoder would receive at @p addr:
     * the stored (or background) codeword XORed with the injected
     * corruption. Side-effect-free and decode-free; the controllers'
     * batch read paths gather these into transposed byte planes and
     * run one vector syndrome pass instead of 9 scalar decodes.
     */
    ecc::Word72 rawCodeword(const WordAddr &addr) const;

    /** Fault-injection hook for tests and experiments. */
    FaultInjector &faults() { return injector_; }
    const FaultInjector &faults() const { return injector_; }

    /** Advance the fault epoch (used when injecting transient faults). */
    std::uint64_t nextFaultEpoch() { return ++epoch_; }

    /**
     * The data value the chip *should* hold at @p addr (last written or
     * background), ignoring faults. Test oracle only.
     */
    std::uint64_t expectedData(const WordAddr &addr) const;

    /**
     * Override the background (never-written) data pattern. Used by
     * controllers to model a boot-time initialization that makes
     * check/parity chips consistent with the data chips without
     * materializing every word (e.g. XED's parity chip holds the XOR of
     * the data chips' contents from the start).
     */
    void
    setBackgroundData(std::function<std::uint64_t(std::uint64_t)> fn)
    {
        backgroundData_ = std::move(fn);
    }

  private:
    struct StoredWord
    {
        ecc::Word72 codeword;
        std::uint64_t writeEpoch = 0;
    };

    /** Background codeword for a never-written address. */
    ecc::Word72 backgroundWord(std::uint64_t packed) const;

    ChipGeometry geometry_;
    const ecc::Secded7264 &code_;
    std::uint64_t chipSeed_;
    bool xedEnable_ = false;
    std::uint64_t catchWord_ = 0;
    std::uint64_t epoch_ = 0;
    std::unordered_map<std::uint64_t, StoredWord> store_;
    FaultInjector injector_;
    /** Background data for unwritten words (defaults to a seeded hash). */
    std::function<std::uint64_t(std::uint64_t)> backgroundData_;
};

} // namespace xed::dram

#endif // XED_DRAM_CHIP_HH
