/**
 * @file
 * DRAM chip and DIMM geometry (Table V of the paper).
 *
 * The modeled device is a 2Gb x8 DDR3 chip: 8 banks, 32K rows per bank,
 * 128 cache-line columns per row, and 64 bits contributed per chip per
 * cache-line access. The chip-local *bit* address space is laid out as
 *     bank(3) | row(15) | col(7) | bit(6)   = 31 bits = 2Gb.
 * The *word* address space (one 64-bit on-die ECC word) drops the bit
 * field: bank | row | col.
 */

#ifndef XED_DRAM_GEOMETRY_HH
#define XED_DRAM_GEOMETRY_HH

#include <cstdint>

#include "common/bitops.hh"

namespace xed::dram
{

struct ChipGeometry
{
    unsigned bankBits = 3;  ///< 8 banks per rank (Table V)
    unsigned rowBits = 15;  ///< 32K rows per bank
    unsigned colBits = 7;   ///< 128 cache lines per row
    unsigned bitBits = 6;   ///< 64 bits per chip per cache line

    unsigned banks() const { return 1u << bankBits; }
    std::uint64_t rowsPerBank() const { return std::uint64_t{1} << rowBits; }
    unsigned colsPerRow() const { return 1u << colBits; }
    unsigned bitsPerWord() const { return 1u << bitBits; }

    /** Number of 64-bit words stored by the chip (2^25 for 2Gb x8). */
    std::uint64_t
    words() const
    {
        return std::uint64_t{1} << (bankBits + rowBits + colBits);
    }

    /** Total capacity in bits (2^31 = 2Gb). */
    std::uint64_t
    bits() const
    {
        return words() << bitBits;
    }

    unsigned wordAddrBits() const { return bankBits + rowBits + colBits; }
};

/** Word address within one chip (the unit the on-die ECC protects). */
struct WordAddr
{
    unsigned bank = 0;
    unsigned row = 0;
    unsigned col = 0;

    friend bool
    operator==(const WordAddr &a, const WordAddr &b)
    {
        return a.bank == b.bank && a.row == b.row && a.col == b.col;
    }
};

/** Pack a WordAddr into a linear word index: bank | row | col. */
inline std::uint64_t
packWordAddr(const ChipGeometry &g, const WordAddr &a)
{
    return ((static_cast<std::uint64_t>(a.bank) << g.rowBits | a.row)
            << g.colBits) |
           a.col;
}

/** Unpack a linear word index. */
inline WordAddr
unpackWordAddr(const ChipGeometry &g, std::uint64_t linear)
{
    WordAddr a;
    a.col = static_cast<unsigned>(linear & lowMask(g.colBits));
    linear >>= g.colBits;
    a.row = static_cast<unsigned>(linear & lowMask(g.rowBits));
    linear >>= g.rowBits;
    a.bank = static_cast<unsigned>(linear & lowMask(g.bankBits));
    return a;
}

/** ECC-DIMM rank organization used by XED (Section V-A). */
struct RankConfig
{
    unsigned dataChips = 8; ///< x8 devices supplying the 64B line
    unsigned eccChips = 1;  ///< the 9th chip, holding RAID-3 parity
    unsigned chips() const { return dataChips + eccChips; }
};

} // namespace xed::dram

#endif // XED_DRAM_GEOMETRY_HH
