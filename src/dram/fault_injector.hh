/**
 * @file
 * Per-chip fault injection for the functional data-path model.
 *
 * Faults follow the granularities of the field study the paper draws its
 * rates from (Sridharan & Liberty, SC'12 -- Table I): single-bit,
 * single-word, single-column, single-row, single-bank and whole-chip
 * (multi-bank) failures, each transient or permanent.
 *
 * Semantics:
 *  - A *permanent* fault corrupts every read of an affected word, even
 *    after the word is rewritten (stuck-at-like). This is what the
 *    Intra-Line Fault Diagnosis write/read-back probe detects.
 *  - A *transient* fault corrupts the stored content once: reads observe
 *    the corruption until the word is rewritten, after which the word is
 *    clean again. Rewrites are tracked with per-word write epochs.
 */

#ifndef XED_DRAM_FAULT_INJECTOR_HH
#define XED_DRAM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "dram/geometry.hh"
#include "ecc/word72.hh"

namespace xed::dram
{

/** Fault granularities, mirroring Table I of the paper. */
enum class FaultGranularity
{
    SingleBit,
    SingleWord,
    SingleColumn,
    SingleRow,
    SingleBank,
    Chip, ///< multi-bank: the whole device misbehaves
};

/** One injected fault region inside a chip. */
struct Fault
{
    FaultGranularity granularity = FaultGranularity::SingleBit;
    bool permanent = false;
    /** Anchor address; fields beyond the granularity are ignored. */
    WordAddr addr{};
    /** For SingleBit / SingleColumn: which of the 72 codeword bits. */
    unsigned bitPos = 0;
    /** Seed that derives the per-word corruption pattern. */
    std::uint64_t seed = 0;
    /** Injection epoch (compared against per-word write epochs). */
    std::uint64_t epoch = 0;
};

/** Computes the corruption mask a chip's reads observe. */
class FaultInjector
{
  public:
    explicit FaultInjector(const ChipGeometry &geometry)
        : geometry_(geometry)
    {
    }

    void add(const Fault &fault) { faults_.push_back(fault); }
    void clear() { faults_.clear(); }
    const std::vector<Fault> &faults() const { return faults_; }

    /** Drop transient faults (e.g. after a scrub). */
    void clearTransients();

    /**
     * XOR-mask applied to the stored 72-bit codeword at @p addr.
     *
     * @param wordWriteEpoch epoch of the last write to this word;
     *        transient faults older than it no longer apply.
     */
    ecc::Word72 corruption(const WordAddr &addr,
                           std::uint64_t wordWriteEpoch) const;

    /** True iff any fault (of any kind) touches @p addr. */
    bool touches(const WordAddr &addr) const;

  private:
    bool faultCovers(const Fault &fault, const WordAddr &addr) const;
    ecc::Word72 faultMask(const Fault &fault, const WordAddr &addr) const;

    ChipGeometry geometry_;
    std::vector<Fault> faults_;
};

} // namespace xed::dram

#endif // XED_DRAM_FAULT_INJECTOR_HH
