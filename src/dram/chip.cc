#include "dram/chip.hh"

namespace xed::dram
{

namespace
{

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

Chip::Chip(const ChipGeometry &geometry, const ecc::Secded7264 &onDieCode,
           std::uint64_t chipSeed)
    : geometry_(geometry), code_(onDieCode), chipSeed_(chipSeed),
      injector_(geometry)
{
}

ecc::Word72
Chip::backgroundWord(std::uint64_t packed) const
{
    const std::uint64_t data = backgroundData_
                                   ? backgroundData_(packed)
                                   : mix(packed ^ chipSeed_);
    return code_.encode(data);
}

std::uint64_t
Chip::expectedData(const WordAddr &addr) const
{
    const std::uint64_t packed = packWordAddr(geometry_, addr);
    const auto it = store_.find(packed);
    if (it != store_.end())
        return code_.extractData(it->second.codeword);
    return backgroundData_ ? backgroundData_(packed)
                           : mix(packed ^ chipSeed_);
}

void
Chip::write(const WordAddr &addr, std::uint64_t data)
{
    const std::uint64_t packed = packWordAddr(geometry_, addr);
    auto &slot = store_[packed];
    slot.codeword = code_.encode(data);
    slot.writeEpoch = ++epoch_;
}

ecc::Word72
Chip::rawCodeword(const WordAddr &addr) const
{
    const std::uint64_t packed = packWordAddr(geometry_, addr);
    ecc::Word72 codeword;
    std::uint64_t writeEpoch = 0;
    const auto it = store_.find(packed);
    if (it != store_.end()) {
        codeword = it->second.codeword;
        writeEpoch = it->second.writeEpoch;
    } else {
        codeword = backgroundWord(packed);
    }
    codeword ^= injector_.corruption(addr, writeEpoch);
    return codeword;
}

ChipReadResult
Chip::read(const WordAddr &addr)
{
    const auto decoded = code_.decode(rawCodeword(addr));
    ChipReadResult result;
    result.internalStatus = decoded.status;
    if (xedEnable_ && decoded.status != ecc::DecodeStatus::NoError) {
        // DC-Mux: reveal the detection episode via the catch-word.
        result.value = catchWord_;
        result.sentCatchWord = true;
    } else {
        // decoded.data is the corrected value for single-bit errors and
        // the raw (possibly garbage) data for detected-uncorrectable
        // words -- the best a real chip can put on the bus.
        result.value = decoded.data;
    }
    return result;
}

} // namespace xed::dram
