/**
 * @file
 * Runtime-fault event sampling for the Monte-Carlo engine.
 *
 * Fault arrivals per chip form independent Poisson processes, one per
 * Table I row; event times are uniform over the simulated lifetime.
 * Multi-rank events insert a whole-chip range at the same chip position
 * of every rank of the DIMM (shared-circuitry failure).
 */

#ifndef XED_FAULTSIM_FAULT_MODEL_HH
#define XED_FAULTSIM_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "faultsim/fault_range.hh"
#include "faultsim/fit_rates.hh"

namespace xed::faultsim
{

/** One runtime fault materialized in a specific chip. */
struct FaultEvent
{
    unsigned rank = 0;
    unsigned chip = 0; ///< position within the rank
    FaultKind kind = FaultKind::Bit;
    bool transient = false;
    double timeHours = 0;
    /**
     * When the fault stops being visible: infinity for permanent
     * faults (no repair modeled), and the next patrol-scrub boundary
     * for transient faults when scrubbing is enabled. Two faults can
     * only combine into a multi-chip failure while both are active.
     */
    double expiresHours = 1e300;
    FaultRange range{};

    bool
    concurrentWith(const FaultEvent &other) const
    {
        return timeHours <= other.expiresHours &&
               other.timeHours <= expiresHours;
    }
};

/** Sample a Poisson variate (small-lambda inversion method). */
unsigned samplePoisson(Rng &rng, double lambda);

/**
 * Map a draw in [0, fit.totalFit()) to the fault kind whose cumulative
 * FIT bracket contains it. A draw landing exactly on a bracket
 * boundary belongs to the next kind, so zero-rate kinds (an empty
 * bracket, notably draw == 0 when the first entry is zero) are
 * unreachable.
 */
FaultKind pickFaultKind(const FitTable &fit, double draw);

/** Organization of one sampling unit (usually one DIMM). */
struct DimmShape
{
    unsigned ranks = 2;
    unsigned chipsPerRank = 9;
    /**
     * Expand multi-rank events into a twin chip failure on the other
     * rank of this unit. Set to false when the unit's ranks come from
     * different DIMMs (cross-channel Double-Chipkill): the twin then
     * falls into a different codeword group and is modeled by that
     * group's own sampling.
     */
    bool twinMultiRank = true;
    unsigned chips() const { return ranks * chipsPerRank; }
};

/**
 * Sample all runtime fault events of one DIMM over @p hours.
 * Multi-rank events expand into one FaultEvent per rank.
 *
 * @param scrubIntervalHours patrol-scrub period; transient faults are
 *        rewritten (and thus disappear) at the next scrub boundary.
 *        <= 0 disables scrubbing (the paper's accumulate-forever
 *        model).
 */
std::vector<FaultEvent> sampleDimmFaults(Rng &rng, const FitTable &fit,
                                         const AddressLayout &layout,
                                         const DimmShape &shape,
                                         double hours,
                                         double scrubIntervalHours = 0);

} // namespace xed::faultsim

#endif // XED_FAULTSIM_FAULT_MODEL_HH
