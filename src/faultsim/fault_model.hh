/**
 * @file
 * Runtime-fault event sampling for the Monte-Carlo engine.
 *
 * Fault arrivals per chip form independent Poisson processes, one per
 * Table I row; event times are uniform over the simulated lifetime.
 * Multi-rank events insert a whole-chip range at the same chip position
 * of every rank of the DIMM (shared-circuitry failure).
 */

#ifndef XED_FAULTSIM_FAULT_MODEL_HH
#define XED_FAULTSIM_FAULT_MODEL_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "faultsim/fault_range.hh"
#include "faultsim/fit_rates.hh"

namespace xed::faultsim
{

/** One runtime fault materialized in a specific chip. */
struct FaultEvent
{
    unsigned rank = 0;
    unsigned chip = 0; ///< position within the rank
    FaultKind kind = FaultKind::Bit;
    bool transient = false;
    double timeHours = 0;
    /**
     * When the fault stops being visible: infinity for permanent
     * faults (no repair modeled), and the next patrol-scrub boundary
     * for transient faults when scrubbing is enabled. Two faults can
     * only combine into a multi-chip failure while both are active.
     */
    double expiresHours = 1e300;
    FaultRange range{};

    bool
    concurrentWith(const FaultEvent &other) const
    {
        return timeHours <= other.expiresHours &&
               other.timeHours <= expiresHours;
    }
};

/** Sample a Poisson variate (small-lambda inversion method). */
unsigned samplePoisson(Rng &rng, double lambda);

/**
 * Map a draw in [0, fit.totalFit()) to the fault kind whose cumulative
 * FIT bracket contains it. A draw landing exactly on a bracket
 * boundary belongs to the next kind, so zero-rate kinds (an empty
 * bracket, notably draw == 0 when the first entry is zero) are
 * unreachable.
 */
FaultKind pickFaultKind(const FitTable &fit, double draw);

/** Organization of one sampling unit (usually one DIMM). */
struct DimmShape
{
    unsigned ranks = 2;
    unsigned chipsPerRank = 9;
    /**
     * Expand multi-rank events into a twin chip failure on the other
     * rank of this unit. Set to false when the unit's ranks come from
     * different DIMMs (cross-channel Double-Chipkill): the twin then
     * falls into a different codeword group and is modeled by that
     * group's own sampling.
     */
    bool twinMultiRank = true;
    unsigned chips() const { return ranks * chipsPerRank; }
};

/**
 * How the per-DIMM Poisson fault count is drawn.
 *
 * Knuth (the default) is the original product-of-uniforms loop: k+1
 * uniform draws for a count of k. InvCdf draws a single uniform and
 * maps it through a precomputed inverse-CDF table -- statistically
 * exact (each count keeps its exact double-rounded Poisson mass) and
 * deterministic per seed, but it consumes a DIFFERENT number of RNG
 * draws, so it is an opt-in knob: switching samplers changes every
 * downstream draw of the sampled stream and therefore the sampled
 * fault sets. Golden-value results are pinned to Knuth.
 */
enum class PoissonSampler
{
    Knuth,
    InvCdf,
};

const char *poissonSamplerName(PoissonSampler sampler);
std::optional<PoissonSampler> parsePoissonSampler(std::string_view name);

/**
 * Everything the per-system sampling loop needs, derived once per
 * Monte-Carlo shard instead of once per sampled DIMM: the FIT-table
 * sum, the prefix-sum CDF over fault kinds, per-kind transient
 * fractions, the Poisson rate lambda with exp(-lambda), the DIMM
 * shape, and (for the InvCdf sampler) the Poisson inverse-CDF table.
 *
 * Immutable after construction, so one context can be shared by any
 * number of concurrent workers. The Knuth draw path through a context
 * is bit-identical to the historical sampleDimmFaults() free function:
 * every derived quantity is computed with the same operations in the
 * same order, only earlier.
 */
class SampleContext
{
  public:
    SampleContext(const FitTable &fit, const AddressLayout &layout,
                  const DimmShape &shape, double hours,
                  double scrubIntervalHours = 0,
                  PoissonSampler sampler = PoissonSampler::Knuth);

    /**
     * Poisson fault count for one DIMM lifetime (sampler dispatch).
     * Inline: this is the per-channel fast path -- >= 93% of draws at
     * Table I rates return 0 after a single uniform + compare.
     */
    unsigned
    sampleFaultCount(Rng &rng) const
    {
        if (sampler_ == PoissonSampler::Knuth) {
            // Knuth product-of-uniforms against the hoisted
            // exp(-lambda) limit; draw-identical to samplePoisson().
            // First iteration has p == u0 exactly, so the zero-fault
            // test (the >= 93% case) reduces to one integer compare
            // against floor(exp(-lambda) * 2^53): u0 <= threshold
            // iff u0 * 2^-53 <= exp(-lambda).
            const std::uint64_t u0 = rng.next() >> 11;
            if (u0 <= knuthZeroMax_)
                return 0;
            double p = static_cast<double>(u0) * 0x1.0p-53;
            unsigned k = 1;
            do {
                ++k;
                p *= rng.uniform();
            } while (p > expNegLambda_);
            return k - 1;
        }
        // Single uniform through the inverse CDF. For Table I rates
        // P(X = 0) ~ 0.93, so this is almost always one comparison.
        const double u = rng.uniform();
        unsigned k = 0;
        while (k + 1 < poissonTerms_ && u >= poissonCdf_[k])
            ++k;
        return k;
    }

    /**
     * Map a draw in [0, totalFit()) to its fault kind via the prefix
     * CDF. Matches pickFaultKind(fit, draw) exactly, boundary rule
     * included (a draw on a bracket boundary belongs to the next
     * kind).
     */
    FaultKind
    pickKind(double draw) const
    {
        for (unsigned i = 0; i + 1 < numFaultKinds; ++i)
            if (draw < kindCdf_[i])
                return static_cast<FaultKind>(i);
        return static_cast<FaultKind>(numFaultKinds - 1);
    }

    double totalFit() const { return totalFit_; }
    /** The Knuth zero-draw threshold: a raw 53-bit draw at or below
     *  this is a zero-fault lifetime. Exposed for the vectorized
     *  zero-fault filter (zero_filter.hh). */
    std::uint64_t knuthZeroMax() const { return knuthZeroMax_; }
    double lambda() const { return lambda_; }
    double expNegLambda() const { return expNegLambda_; }
    double hours() const { return hours_; }
    double scrubIntervalHours() const { return scrubIntervalHours_; }
    const DimmShape &shape() const { return shape_; }
    const AddressLayout &layout() const { return layout_; }
    PoissonSampler sampler() const { return sampler_; }
    double kindTotal(FaultKind k) const
    {
        return kindTotal_[static_cast<unsigned>(k)];
    }
    double kindTransient(FaultKind k) const
    {
        return kindTransient_[static_cast<unsigned>(k)];
    }

  private:
    AddressLayout layout_;
    DimmShape shape_;
    double hours_;
    double scrubIntervalHours_;
    double totalFit_;
    double lambda_;
    double expNegLambda_;
    /** floor(expNegLambda_ * 2^53): raw 53-bit draws at or below this
     *  are zero-fault lifetimes (integer form of u <= exp(-lambda)). */
    std::uint64_t knuthZeroMax_;
    /** kindCdf_[i] = sum of rates[0..i].total(), accumulated in the
     *  same left-to-right order as pickFaultKind's linear scan. */
    std::array<double, numFaultKinds> kindCdf_;
    std::array<double, numFaultKinds> kindTotal_;
    std::array<double, numFaultKinds> kindTransient_;
    PoissonSampler sampler_;
    /** P(X <= k) for the InvCdf sampler, filled until the CDF
     *  saturates to 1.0 in double precision. */
    std::array<double, 64> poissonCdf_{};
    unsigned poissonTerms_ = 0;
};

/**
 * Materialize @p count already-drawn fault events into @p out
 * (cleared first). The engine's hot loop draws the count inline via
 * ctx.sampleFaultCount() and only pays this call when count > 0.
 * Allocation-free once @p out has warmed up to its high-water
 * capacity. Inline so the materialization fuses into the engine loop.
 */
inline void
sampleDimmFaultsInto(Rng &rng, const SampleContext &ctx, unsigned count,
                     std::vector<FaultEvent> &out)
{
    out.clear();

    // Attribute each of the @p count sampled events to a chip, kind,
    // permanence, time and address range. The shape fields are hoisted
    // into locals: the vector writes below could alias same-typed
    // members behind the references, which would otherwise force a
    // reload every iteration.
    const DimmShape &shape = ctx.shape();
    const AddressLayout &layout = ctx.layout();
    const unsigned ranks = shape.ranks;
    const unsigned chipsPerRank = shape.chipsPerRank;
    const unsigned chips = ranks * chipsPerRank;
    const bool twinMultiRank = shape.twinMultiRank;
    const double hours = ctx.hours();
    const double scrubIntervalHours = ctx.scrubIntervalHours();
    for (unsigned e = 0; e < count; ++e) {
        const unsigned chipLinear =
            static_cast<unsigned>(rng.below(chips));
        const auto kind = ctx.pickKind(rng.uniform() * ctx.totalFit());
        const bool transient =
            rng.uniform() * ctx.kindTotal(kind) < ctx.kindTransient(kind);
        const double time = rng.uniform() * hours;

        FaultEvent ev;
        // chipLinear -> (rank, chip). Every shape in the paper is
        // dual-rank, where the split is a branchless compare +
        // subtract; the general division only runs for exotic shapes.
        if (ranks == 2) {
            ev.rank = chipLinear >= chipsPerRank ? 1u : 0u;
            ev.chip = chipLinear - ev.rank * chipsPerRank;
        } else {
            ev.rank = chipLinear / chipsPerRank;
            ev.chip = chipLinear % chipsPerRank;
        }
        ev.kind = kind;
        ev.transient = transient;
        ev.timeHours = time;
        if (transient && scrubIntervalHours > 0) {
            // The patrol scrubber rewrites (and thereby heals) the
            // affected cells at the next scrub boundary.
            ev.expiresHours =
                (std::floor(time / scrubIntervalHours) + 1.0) *
                scrubIntervalHours;
        }
        ev.range = randomRange(rng, layout, kind);
        out.push_back(ev);

        if (kind == FaultKind::MultiRank && twinMultiRank) {
            // Shared circuitry: the same chip position fails in every
            // other rank of the DIMM at the same time.
            for (unsigned r = 0; r < ranks; ++r) {
                if (r == ev.rank)
                    continue;
                FaultEvent twin = ev;
                twin.rank = r;
                out.push_back(twin);
            }
        }
    }
}

/**
 * Sample all runtime fault events of one DIMM into @p out (cleared
 * first): count draw + materialization in one call. A zero-fault draw
 * -- >= 93% of DIMMs at Table I rates -- returns before constructing
 * any event.
 */
inline void
sampleDimmFaultsInto(Rng &rng, const SampleContext &ctx,
                     std::vector<FaultEvent> &out)
{
    const unsigned count = ctx.sampleFaultCount(rng);
    if (count == 0) {
        out.clear();
        return;
    }
    sampleDimmFaultsInto(rng, ctx, count, out);
}

/**
 * Sample all runtime fault events of one DIMM over @p hours.
 * Multi-rank events expand into one FaultEvent per rank.
 *
 * Convenience wrapper: builds a throwaway SampleContext per call.
 * Draw-sequence identical to sampleDimmFaultsInto with a hoisted
 * context.
 *
 * @param scrubIntervalHours patrol-scrub period; transient faults are
 *        rewritten (and thus disappear) at the next scrub boundary.
 *        <= 0 disables scrubbing (the paper's accumulate-forever
 *        model).
 */
std::vector<FaultEvent> sampleDimmFaults(Rng &rng, const FitTable &fit,
                                         const AddressLayout &layout,
                                         const DimmShape &shape,
                                         double hours,
                                         double scrubIntervalHours = 0);

} // namespace xed::faultsim

#endif // XED_FAULTSIM_FAULT_MODEL_HH
