#include "faultsim/scheme.hh"

#include <algorithm>
#include <cmath>

namespace xed::faultsim
{

namespace
{

/** P(the 64-bit word holding a runtime faulty bit also has a scaling
 *  fault in one of the other 63 cells). */
double
scaledWordProb(double scalingRate)
{
    return 1.0 - std::pow(1.0 - scalingRate, 63.0);
}

/**
 * For NON-ECC DIMMs with on-die ECC: probability a bit-class fault
 * becomes visible (its word turns into a 2-bit on-die DUE that the chip
 * passes through raw). Column faults have one shot per row.
 */
double
bitClassEscapeProb(FaultKind kind, const AddressLayout &layout,
                   double scalingRate)
{
    const double perWord = scaledWordProb(scalingRate);
    if (kind == FaultKind::Bit)
        return perWord;
    // Column: one affected bit in every row of the bank.
    const double rows = static_cast<double>(std::uint64_t{1}
                                            << layout.rowBits);
    return 1.0 - std::pow(1.0 - perWord, rows);
}

/**
 * For SECDED ECC-DIMMs with on-die ECC: probability a bit-class fault
 * defeats the DIMM-level code as well -- the escaped 2-bit word must
 * land both bad bits in the same 8-bit beat (7 of the 63 partner cells).
 */
double
bitClassSecdedDueProb(FaultKind kind, const AddressLayout &layout,
                      double scalingRate)
{
    const double perWord = scaledWordProb(scalingRate) * (7.0 / 63.0);
    if (kind == FaultKind::Bit)
        return perWord;
    const double rows = static_cast<double>(std::uint64_t{1}
                                            << layout.rowBits);
    return 1.0 - std::pow(1.0 - perWord, rows);
}

/**
 * Prime (if stale) and consult the scratch probability cache: the
 * per-kind pow() results above are fixed for a whole run, so each
 * worker computes them once and replays the exact same doubles --
 * identical doubles feed identical bernoulli draws.
 */
const EvalScratch::ProbCache &
primedProbCache(const AddressLayout &layout, double scalingRate,
                EvalScratch &scratch)
{
    auto &cache = scratch.prob;
    if (!cache.primed || cache.scalingRate != scalingRate ||
        cache.rowBits != layout.rowBits) {
        cache.primed = true;
        cache.scalingRate = scalingRate;
        cache.rowBits = layout.rowBits;
        cache.escapeBit =
            bitClassEscapeProb(FaultKind::Bit, layout, scalingRate);
        cache.escapeColumn =
            bitClassEscapeProb(FaultKind::Column, layout, scalingRate);
        cache.secdedBit =
            bitClassSecdedDueProb(FaultKind::Bit, layout, scalingRate);
        cache.secdedColumn =
            bitClassSecdedDueProb(FaultKind::Column, layout, scalingRate);
    }
    return cache;
}

double
cachedEscapeProb(FaultKind kind, const AddressLayout &layout,
                 double scalingRate, EvalScratch &scratch)
{
    const auto &cache = primedProbCache(layout, scalingRate, scratch);
    return kind == FaultKind::Bit ? cache.escapeBit : cache.escapeColumn;
}

double
cachedSecdedDueProb(FaultKind kind, const AddressLayout &layout,
                    double scalingRate, EvalScratch &scratch)
{
    const auto &cache = primedProbCache(layout, scalingRate, scratch);
    return kind == FaultKind::Bit ? cache.secdedBit : cache.secdedColumn;
}

/** Beat index (0..7) of a bit-class fault's fixed bit position. */
unsigned
beatOf(const FaultRange &range)
{
    return static_cast<unsigned>((range.addr >> 3) & 0x7);
}

/** Distinct physical chip identity inside a DIMM. */
std::uint64_t
chipId(const FaultEvent &e)
{
    return (static_cast<std::uint64_t>(e.rank) << 32) | e.chip;
}

void
keepEarliest(std::optional<SchemeFailure> &best, const SchemeFailure &f)
{
    if (!best || f.timeHours < best->timeHours)
        best = f;
}

/**
 * Visit every pair (i < j order) of events that are concurrently
 * active AND overlap at 64-bit-word granularity -- the shared guard of
 * all the multi-chip failure rules. @p fn receives (a, b) and applies
 * the scheme-specific part of the rule (chip distinctness, beat
 * alignment, kind filters) before recording a failure.
 */
template <typename Fn>
void
forEachConcurrentWordPair(std::span<const FaultEvent> events,
                          const AddressLayout &layout, Fn &&fn)
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &a = events[i];
        for (std::size_t j = i + 1; j < events.size(); ++j) {
            const auto &b = events[j];
            if (a.concurrentWith(b) &&
                intersectAtWord(a.range, b.range, layout))
                fn(a, b);
        }
    }
}

/**
 * Visit every triple (i < j < k order) of events on three DISTINCT
 * chips that are pairwise concurrent and share a word: the pairwise
 * range refinement ab is intersected with c, which is exactly the
 * >= 3-chip defeat condition of a 2-chip corrector.
 */
template <typename Fn>
void
forEachConcurrentWordTriple(std::span<const FaultEvent> events,
                            const AddressLayout &layout, Fn &&fn)
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &a = events[i];
        for (std::size_t j = i + 1; j < events.size(); ++j) {
            const auto &b = events[j];
            if (chipId(a) == chipId(b))
                continue;
            if (!a.concurrentWith(b))
                continue;
            const auto ab = intersectRange(a.range, b.range, layout);
            if (!ab)
                continue;
            for (std::size_t k = j + 1; k < events.size(); ++k) {
                const auto &c = events[k];
                if (chipId(c) == chipId(a) || chipId(c) == chipId(b))
                    continue;
                if (!c.concurrentWith(a) || !c.concurrentWith(b))
                    continue;
                if (intersectRange(*ab, c.range, layout))
                    fn(a, b, c);
            }
        }
    }
}

/** Base with the shared group machinery. */
class SchemeBase : public Scheme
{
  public:
    SchemeBase(const OnDieOptions &onDie, unsigned chipsPerRank,
               unsigned groupRanks, bool twinMultiRank = true)
        : onDie_(onDie), chipsPerRank_(chipsPerRank),
          groupRanks_(groupRanks), twinMultiRank_(twinMultiRank)
    {
    }

    DimmShape
    dimmShape() const override
    {
        return {2, chipsPerRank_, twinMultiRank_};
    }

    std::optional<SchemeFailure>
    evaluateDimm(std::span<const FaultEvent> events,
                 const AddressLayout &layout, Rng &rng,
                 EvalScratch &scratch) const override
    {
        const unsigned groups = 2 / groupRanks_;
        // No partition needed when every rank shares one group, or when
        // a single event makes every other group empty (the dominant
        // faulty-channel case: expected faults per DIMM is ~0.07).
        if (groups == 1 || events.size() == 1)
            return events.empty()
                       ? std::nullopt
                       : evaluateGroup(events, layout, rng, scratch);
        std::optional<SchemeFailure> best;
        auto &groupEvents = scratch.group;
        for (unsigned g = 0; g < groups; ++g) {
            groupEvents.clear();
            for (const auto &e : events)
                if (e.rank / groupRanks_ == g)
                    groupEvents.push_back(e);
            if (groupEvents.empty())
                continue;
            if (const auto f =
                    evaluateGroup(groupEvents, layout, rng, scratch))
                keepEarliest(best, *f);
        }
        return best;
    }

  protected:
    /**
     * Evaluate one lockstep group. May use scratch.visible and
     * scratch.escaped; scratch.group holds the group's events when the
     * scheme partitions ranks and must not be touched here.
     */
    virtual std::optional<SchemeFailure>
    evaluateGroup(std::span<const FaultEvent> events,
                  const AddressLayout &layout, Rng &rng,
                  EvalScratch &scratch) const = 0;

    OnDieOptions onDie_;
    unsigned chipsPerRank_;
    unsigned groupRanks_;
    bool twinMultiRank_;
};

// ---------------------------------------------------------------------
// Non-ECC DIMM (8 chips).
// ---------------------------------------------------------------------
class NonEccScheme : public SchemeBase
{
  public:
    explicit NonEccScheme(const OnDieOptions &onDie)
        : SchemeBase(onDie, 8, 1)
    {
    }

    std::string
    name() const override
    {
        return onDie_.present ? "Non-ECC DIMM + On-Die ECC"
                              : "Non-ECC DIMM";
    }

  protected:
    std::optional<SchemeFailure>
    evaluateGroup(std::span<const FaultEvent> events,
                  const AddressLayout &layout, Rng &rng,
                  EvalScratch &scratch) const override
    {
        std::optional<SchemeFailure> best;
        for (const auto &e : events) {
            if (!onDie_.present) {
                // Nothing corrects anything: every fault is an SDC.
                keepEarliest(best,
                             {e.timeHours, "sdc", obs::FailureClass::Sdc,
                              obs::DetectionOutcome::None,
                              faultKindBit(e)});
                continue;
            }
            if (multiBitPerWord(e.kind)) {
                keepEarliest(best,
                             {e.timeHours, "sdc-multibit",
                              obs::FailureClass::Sdc,
                              obs::DetectionOutcome::RawPassthrough,
                              faultKindBit(e)});
            } else if (onDie_.scalingRate > 0 &&
                       rng.bernoulli(cachedEscapeProb(
                           e.kind, layout, onDie_.scalingRate,
                           scratch))) {
                keepEarliest(best,
                             {e.timeHours, "sdc-scaling-interaction",
                              obs::FailureClass::Sdc,
                              obs::DetectionOutcome::RawPassthrough,
                              faultKindBit(e)});
            }
        }
        return best;
    }
};

// ---------------------------------------------------------------------
// 9-chip ECC-DIMM with (72,64) DIMM-level SECDED.
// ---------------------------------------------------------------------
class SecdedScheme : public SchemeBase
{
  public:
    explicit SecdedScheme(const OnDieOptions &onDie)
        : SchemeBase(onDie, 9, 1)
    {
    }

    std::string
    name() const override
    {
        return onDie_.present ? "ECC-DIMM (SECDED) + On-Die ECC"
                              : "ECC-DIMM (SECDED)";
    }

  protected:
    std::optional<SchemeFailure>
    evaluateGroup(std::span<const FaultEvent> events,
                  const AddressLayout &layout, Rng &rng,
                  EvalScratch &scratch) const override
    {
        std::optional<SchemeFailure> best;
        for (const auto &e : events) {
            if (multiBitPerWord(e.kind)) {
                // Up to 8 bad bits per 72-bit beat from one chip:
                // beyond SECDED regardless of On-Die ECC.
                keepEarliest(best,
                             {e.timeHours, "dimm-uncorrectable",
                              obs::FailureClass::Due,
                              obs::DetectionOutcome::DimmDetect,
                              faultKindBit(e)});
            } else if (onDie_.present && onDie_.scalingRate > 0 &&
                       rng.bernoulli(cachedSecdedDueProb(
                           e.kind, layout, onDie_.scalingRate,
                           scratch))) {
                keepEarliest(best,
                             {e.timeHours, "due-scaling-interaction",
                              obs::FailureClass::Due,
                              obs::DetectionOutcome::DimmDetect,
                              faultKindBit(e)});
            }
        }
        if (!onDie_.present) {
            // Without on-die correction, bit-class faults reach the
            // DIMM; two of them in the same word AND beat defeat
            // SECDED. Same-chip pairs count too: the codeword sees two
            // bad bits either way.
            auto &bitClass = scratch.visible;
            bitClass.clear();
            for (const auto &e : events)
                if (!multiBitPerWord(e.kind))
                    bitClass.push_back(e);
            forEachConcurrentWordPair(
                bitClass, layout, [&](const auto &a, const auto &b) {
                    if (beatOf(a.range) == beatOf(b.range))
                        keepEarliest(
                            best,
                            {std::max(a.timeHours, b.timeHours),
                             "due-double-bit", obs::FailureClass::Due,
                             obs::DetectionOutcome::DimmDetect,
                             static_cast<std::uint8_t>(faultKindBit(a) |
                                                       faultKindBit(b))});
                });
        }
        return best;
    }
};

// ---------------------------------------------------------------------
// XED on a 9-chip ECC-DIMM (the paper's main proposal).
// ---------------------------------------------------------------------
class XedScheme : public SchemeBase
{
  public:
    explicit XedScheme(const OnDieOptions &onDie)
        : SchemeBase(onDie, 9, 1)
    {
    }

    std::string name() const override { return "XED (9 chips)"; }

  protected:
    std::optional<SchemeFailure>
    evaluateGroup(std::span<const FaultEvent> events,
                  const AddressLayout &layout, Rng &rng,
                  EvalScratch &scratch) const override
    {
        std::optional<SchemeFailure> best;
        for (const auto &e : events) {
            // Transient word faults that alias the on-die code: neither
            // catch-words nor Inter-/Intra-Line diagnosis can locate
            // the chip -> DUE (Section VIII). Permanent word faults are
            // found by the Intra-Line probe.
            if (e.kind == FaultKind::Word && e.transient &&
                rng.bernoulli(onDie_.detectionEscapeProb)) {
                keepEarliest(best,
                             {e.timeHours, "due-word-fault",
                              obs::FailureClass::Due,
                              obs::DetectionOutcome::Collision,
                              faultKindBit(e)});
            }
        }
        // Two chips of the same rank with multi-bit faults in the same
        // word: one catch-word/erasure budget is exceeded -> data loss.
        auto &multiBit = scratch.visible;
        multiBit.clear();
        for (const auto &e : events)
            if (multiBitPerWord(e.kind))
                multiBit.push_back(e);
        forEachConcurrentWordPair(
            multiBit, layout, [&](const auto &a, const auto &b) {
                if (chipId(a) != chipId(b))
                    keepEarliest(
                        best,
                        {std::max(a.timeHours, b.timeHours),
                         "multi-chip-data-loss", obs::FailureClass::Due,
                         obs::DetectionOutcome::ParityReconstruction,
                         static_cast<std::uint8_t>(faultKindBit(a) |
                                                   faultKindBit(b))});
            });
        return best;
    }
};

// ---------------------------------------------------------------------
// Chipkill (single symbol correct) over a lockstep group.
// ---------------------------------------------------------------------
class ChipkillScheme : public SchemeBase
{
  public:
    ChipkillScheme(const OnDieOptions &onDie, unsigned chipsPerRank,
                   unsigned groupRanks, std::string name)
        : SchemeBase(onDie, chipsPerRank, groupRanks),
          name_(std::move(name))
    {
    }

    std::string name() const override { return name_; }

  protected:
    std::optional<SchemeFailure>
    evaluateGroup(std::span<const FaultEvent> events,
                  const AddressLayout &layout, Rng &rng,
                  EvalScratch &scratch) const override
    {
        // Which events reach the symbol code? Multi-bit faults always;
        // bit-class faults only when there is no on-die ECC, or when
        // they land in a scaling-faulted word.
        auto &visible = scratch.visible;
        visible.clear();
        for (const auto &e : events) {
            if (multiBitPerWord(e.kind)) {
                visible.push_back(e);
            } else if (!onDie_.present) {
                visible.push_back(e);
            } else if (onDie_.scalingRate > 0 &&
                       rng.bernoulli(cachedEscapeProb(
                           e.kind, layout, onDie_.scalingRate,
                           scratch))) {
                visible.push_back(e);
            }
        }
        std::optional<SchemeFailure> best;
        forEachConcurrentWordPair(
            visible, layout, [&](const auto &a, const auto &b) {
                if (chipId(a) != chipId(b))
                    keepEarliest(
                        best,
                        {std::max(a.timeHours, b.timeHours),
                         "double-chip", obs::FailureClass::Due,
                         obs::DetectionOutcome::DimmDetect,
                         static_cast<std::uint8_t>(faultKindBit(a) |
                                                   faultKindBit(b))});
            });
        return best;
    }

  private:
    std::string name_;
};

/**
 * Three distinct chips sharing one word defeat a 2-chip corrector.
 * @p outcome records how the third chip was noticed: the symbol code's
 * own syndrome (DimmDetect) for Chipkill/Double-Chipkill, or a failed
 * two-erasure reconstruction (ParityReconstruction) under XED.
 */
std::optional<SchemeFailure>
tripleChipRule(std::span<const FaultEvent> visible,
               const AddressLayout &layout, obs::DetectionOutcome outcome)
{
    std::optional<SchemeFailure> best;
    forEachConcurrentWordTriple(
        visible, layout,
        [&](const auto &a, const auto &b, const auto &c) {
            keepEarliest(
                best,
                {std::max({a.timeHours, b.timeHours, c.timeHours}),
                 "triple-chip", obs::FailureClass::Due, outcome,
                 static_cast<std::uint8_t>(faultKindBit(a) |
                                           faultKindBit(b) |
                                           faultKindBit(c))});
        });
    return best;
}

// ---------------------------------------------------------------------
// Double-Chipkill: corrects any two faulty chips in the group.
// ---------------------------------------------------------------------
class DoubleChipkillScheme : public SchemeBase
{
  public:
    DoubleChipkillScheme(const OnDieOptions &onDie, unsigned chipsPerRank,
                         bool twinMultiRank, std::string name)
        : SchemeBase(onDie, chipsPerRank, 2, twinMultiRank),
          name_(std::move(name))
    {
    }

    std::string name() const override { return name_; }

  protected:
    std::optional<SchemeFailure>
    evaluateGroup(std::span<const FaultEvent> events,
                  const AddressLayout &layout, Rng &rng,
                  EvalScratch &scratch) const override
    {
        auto &visible = scratch.visible;
        visible.clear();
        for (const auto &e : events) {
            if (multiBitPerWord(e.kind) || !onDie_.present) {
                visible.push_back(e);
            } else if (onDie_.scalingRate > 0 &&
                       rng.bernoulli(cachedEscapeProb(
                           e.kind, layout, onDie_.scalingRate,
                           scratch))) {
                visible.push_back(e);
            }
        }
        return tripleChipRule(visible, layout,
                              obs::DetectionOutcome::DimmDetect);
    }

  private:
    std::string name_;
};

// ---------------------------------------------------------------------
// XED on top of Chipkill: two located erasures on 18 chips (Section IX).
// ---------------------------------------------------------------------
class XedChipkillScheme : public SchemeBase
{
  public:
    XedChipkillScheme(const OnDieOptions &onDie, unsigned chipsPerRank,
                      unsigned groupRanks, std::string name)
        : SchemeBase(onDie, chipsPerRank, groupRanks),
          name_(std::move(name))
    {
    }

    std::string name() const override { return name_; }

  protected:
    std::optional<SchemeFailure>
    evaluateGroup(std::span<const FaultEvent> events,
                  const AddressLayout &layout, Rng &rng,
                  EvalScratch &scratch) const override
    {
        std::optional<SchemeFailure> best;
        // Undetected transient word faults consume the code's implicit
        // t=1 random-error budget; alone they are still corrected, but
        // together with any other faulty chip in the same word the
        // erasure budget is blown (2v + e > 2) -> DUE.
        auto &escaped = scratch.escaped;
        auto &visible = scratch.visible;
        escaped.clear();
        visible.clear();
        for (const auto &e : events) {
            if (!multiBitPerWord(e.kind))
                continue; // corrected on-die (catch-word handles it)
            visible.push_back(e);
            if (e.kind == FaultKind::Word && e.transient &&
                rng.bernoulli(onDie_.detectionEscapeProb))
                escaped.push_back(e);
        }
        for (const auto &esc : escaped) {
            for (const auto &other : visible) {
                if (chipId(other) == chipId(esc))
                    continue;
                if (esc.concurrentWith(other) &&
                    intersectAtWord(esc.range, other.range, layout)) {
                    keepEarliest(
                        best,
                        {std::max(esc.timeHours, other.timeHours),
                         "due-escape-plus-erasure",
                         obs::FailureClass::Due,
                         obs::DetectionOutcome::Collision,
                         static_cast<std::uint8_t>(faultKindBit(esc) |
                                                   faultKindBit(other))});
                }
            }
        }
        if (const auto f = tripleChipRule(
                visible, layout,
                obs::DetectionOutcome::ParityReconstruction))
            keepEarliest(best, *f);
        return best;
    }

  private:
    std::string name_;
};

} // namespace

std::unique_ptr<Scheme>
makeScheme(SchemeKind kind, const OnDieOptions &onDie)
{
    switch (kind) {
      case SchemeKind::NonEcc:
        return std::make_unique<NonEccScheme>(onDie);
      case SchemeKind::Secded:
        return std::make_unique<SecdedScheme>(onDie);
      case SchemeKind::Xed:
        return std::make_unique<XedScheme>(onDie);
      case SchemeKind::Chipkill:
        return std::make_unique<ChipkillScheme>(
            onDie, 18, 1, "Chipkill (18 chips)");
      case SchemeKind::ChipkillX8Lockstep:
        return std::make_unique<ChipkillScheme>(
            onDie, 9, 2, "Chipkill (x8 lockstep ablation)");
      case SchemeKind::DoubleChipkill:
        return std::make_unique<DoubleChipkillScheme>(
            onDie, 18, /*twinMultiRank=*/false,
            "Double-Chipkill (36 chips, cross-channel)");
      case SchemeKind::XedChipkill:
        return std::make_unique<XedChipkillScheme>(
            onDie, 18, 1, "XED + Single-Chipkill (18 chips)");
      case SchemeKind::DoubleChipkillLockstep:
        return std::make_unique<DoubleChipkillScheme>(
            onDie, 18, /*twinMultiRank=*/true,
            "Double-Chipkill (36 chips, lockstep ranks)");
      case SchemeKind::XedChipkillLockstep:
        return std::make_unique<XedChipkillScheme>(
            onDie, 9, 2, "XED + Single-Chipkill (18 chips, lockstep)");
    }
    return nullptr;
}

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::NonEcc: return "non-ecc";
      case SchemeKind::Secded: return "secded";
      case SchemeKind::Xed: return "xed";
      case SchemeKind::Chipkill: return "chipkill";
      case SchemeKind::ChipkillX8Lockstep: return "chipkill-x8-lockstep";
      case SchemeKind::DoubleChipkill: return "double-chipkill";
      case SchemeKind::XedChipkill: return "xed-chipkill";
      case SchemeKind::DoubleChipkillLockstep:
        return "double-chipkill-lockstep";
      case SchemeKind::XedChipkillLockstep:
        return "xed-chipkill-lockstep";
    }
    return "?";
}

} // namespace xed::faultsim
