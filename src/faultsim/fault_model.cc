#include "faultsim/fault_model.hh"

#include <cmath>

namespace xed::faultsim
{

unsigned
samplePoisson(Rng &rng, double lambda)
{
    // Knuth's method; lambda is << 1 in all our uses (expected fault
    // count per DIMM over 7 years is ~0.07).
    const double limit = std::exp(-lambda);
    unsigned k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > limit);
    return k - 1;
}

FaultKind
pickFaultKind(const FitTable &fit, double draw)
{
    double cumulative = 0;
    for (unsigned i = 0; i + 1 < numFaultKinds; ++i) {
        cumulative += fit.rates[i].total();
        // Strict <: a draw landing exactly on a boundary belongs to
        // the next kind, which keeps zero-rate kinds (empty brackets,
        // notably draw == 0 with rates[0] == 0) unreachable.
        if (draw < cumulative)
            return static_cast<FaultKind>(i);
    }
    return static_cast<FaultKind>(numFaultKinds - 1);
}

std::vector<FaultEvent>
sampleDimmFaults(Rng &rng, const FitTable &fit, const AddressLayout &layout,
                 const DimmShape &shape, double hours,
                 double scrubIntervalHours)
{
    std::vector<FaultEvent> events;

    // Total event rate across all chips and kinds (transient +
    // permanent), then attribute each sampled event.
    const double sum = fit.totalFit();
    const double perChip = sum * 1e-9 * hours;
    const double lambda = perChip * shape.chips();
    const unsigned count = samplePoisson(rng, lambda);
    if (count == 0)
        return events;

    for (unsigned e = 0; e < count; ++e) {
        const unsigned chipLinear =
            static_cast<unsigned>(rng.below(shape.chips()));
        const auto kind = pickFaultKind(fit, rng.uniform() * sum);
        const auto &entry = fit.entry(kind);
        const bool transient =
            rng.uniform() * entry.total() < entry.transient;
        const double time = rng.uniform() * hours;

        FaultEvent ev;
        ev.rank = chipLinear / shape.chipsPerRank;
        ev.chip = chipLinear % shape.chipsPerRank;
        ev.kind = kind;
        ev.transient = transient;
        ev.timeHours = time;
        if (transient && scrubIntervalHours > 0) {
            // The patrol scrubber rewrites (and thereby heals) the
            // affected cells at the next scrub boundary.
            ev.expiresHours =
                (std::floor(time / scrubIntervalHours) + 1.0) *
                scrubIntervalHours;
        }
        ev.range = randomRange(rng, layout, kind);
        events.push_back(ev);

        if (kind == FaultKind::MultiRank && shape.twinMultiRank) {
            // Shared circuitry: the same chip position fails in every
            // other rank of the DIMM at the same time.
            for (unsigned r = 0; r < shape.ranks; ++r) {
                if (r == ev.rank)
                    continue;
                FaultEvent twin = ev;
                twin.rank = r;
                events.push_back(twin);
            }
        }
    }
    return events;
}

} // namespace xed::faultsim
