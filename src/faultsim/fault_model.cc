#include "faultsim/fault_model.hh"

#include <cmath>

namespace xed::faultsim
{

namespace
{

/** Knuth product-of-uniforms with the exp(-lambda) limit precomputed. */
unsigned
samplePoissonKnuth(Rng &rng, double expNegLambda)
{
    unsigned k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > expNegLambda);
    return k - 1;
}

} // namespace

const char *
poissonSamplerName(PoissonSampler sampler)
{
    return sampler == PoissonSampler::InvCdf ? "invcdf" : "knuth";
}

std::optional<PoissonSampler>
parsePoissonSampler(std::string_view name)
{
    if (name == "knuth")
        return PoissonSampler::Knuth;
    if (name == "invcdf")
        return PoissonSampler::InvCdf;
    return std::nullopt;
}

unsigned
samplePoisson(Rng &rng, double lambda)
{
    // Knuth's method; lambda is << 1 in all our uses (expected fault
    // count per DIMM over 7 years is ~0.07).
    return samplePoissonKnuth(rng, std::exp(-lambda));
}

FaultKind
pickFaultKind(const FitTable &fit, double draw)
{
    double cumulative = 0;
    for (unsigned i = 0; i + 1 < numFaultKinds; ++i) {
        cumulative += fit.rates[i].total();
        // Strict <: a draw landing exactly on a boundary belongs to
        // the next kind, which keeps zero-rate kinds (empty brackets,
        // notably draw == 0 with rates[0] == 0) unreachable.
        if (draw < cumulative)
            return static_cast<FaultKind>(i);
    }
    return static_cast<FaultKind>(numFaultKinds - 1);
}

SampleContext::SampleContext(const FitTable &fit,
                             const AddressLayout &layout,
                             const DimmShape &shape, double hours,
                             double scrubIntervalHours,
                             PoissonSampler sampler)
    : layout_(layout), shape_(shape), hours_(hours),
      scrubIntervalHours_(scrubIntervalHours), sampler_(sampler)
{
    // Same accumulation order as fit.totalFit() / pickFaultKind's
    // linear scan, so every derived double is bit-identical to the
    // values the per-call path used to recompute.
    double cumulative = 0;
    for (unsigned i = 0; i < numFaultKinds; ++i) {
        const FitEntry &entry = fit.rates[i];
        kindTotal_[i] = entry.total();
        kindTransient_[i] = entry.transient;
        cumulative += entry.total();
        kindCdf_[i] = cumulative;
    }
    totalFit_ = cumulative;

    const double perChip = totalFit_ * 1e-9 * hours_;
    lambda_ = perChip * shape_.chips();
    expNegLambda_ = std::exp(-lambda_);
    knuthZeroMax_ = static_cast<std::uint64_t>(
        std::floor(expNegLambda_ * 0x1.0p53));

    // Inverse-CDF table: p_k via the stable recurrence
    // p_{k+1} = p_k * lambda / (k + 1), accumulated until the CDF
    // saturates to 1.0 in double precision (k <= ~40 for lambda <= 2;
    // our workloads sit well below 1). Any uniform in [0, 1) then
    // lands inside the table; the final entry clamps the (probability
    // < 2^-53) tail.
    double p = expNegLambda_;
    double cdf = p;
    poissonCdf_[0] = cdf;
    poissonTerms_ = 1;
    while (cdf < 1.0 && poissonTerms_ < poissonCdf_.size()) {
        p *= lambda_ / static_cast<double>(poissonTerms_);
        cdf += p;
        poissonCdf_[poissonTerms_++] = cdf;
    }
}

std::vector<FaultEvent>
sampleDimmFaults(Rng &rng, const FitTable &fit, const AddressLayout &layout,
                 const DimmShape &shape, double hours,
                 double scrubIntervalHours)
{
    const SampleContext ctx(fit, layout, shape, hours,
                            scrubIntervalHours);
    std::vector<FaultEvent> events;
    sampleDimmFaultsInto(rng, ctx, events);
    return events;
}

} // namespace xed::faultsim
