#include "faultsim/fault_range.hh"

namespace xed::faultsim
{

FaultRange
randomRange(Rng &rng, const AddressLayout &layout, FaultKind kind)
{
    FaultRange r;
    r.addr = rng.next() & layout.allMask();
    switch (kind) {
      case FaultKind::Bit:
        r.mask = 0;
        break;
      case FaultKind::Word:
        r.mask = layout.bitMask();
        break;
      case FaultKind::Column:
        // One column through a bank: fixed bank, column and bit
        // position; every row affected.
        r.mask = layout.rowMask();
        break;
      case FaultKind::Row:
        r.mask = layout.colMask() | layout.bitMask();
        break;
      case FaultKind::Bank:
        r.mask = layout.rowMask() | layout.colMask() | layout.bitMask();
        break;
      case FaultKind::MultiBank:
      case FaultKind::MultiRank:
        r.mask = layout.allMask();
        break;
    }
    r.addr &= ~r.mask;
    return r;
}

bool
intersectAtWord(const FaultRange &a, const FaultRange &b,
                const AddressLayout &layout)
{
    const std::uint64_t wild = a.mask | b.mask | layout.bitMask();
    return ((a.addr ^ b.addr) & ~wild & layout.allMask()) == 0;
}

bool
intersectExact(const FaultRange &a, const FaultRange &b)
{
    return ((a.addr ^ b.addr) & ~(a.mask | b.mask)) == 0;
}

std::optional<FaultRange>
intersectRange(const FaultRange &a, const FaultRange &b,
               const AddressLayout &layout)
{
    FaultRange wa{a.addr & ~layout.bitMask(), a.mask | layout.bitMask()};
    FaultRange wb{b.addr & ~layout.bitMask(), b.mask | layout.bitMask()};
    if (((wa.addr ^ wb.addr) & ~(wa.mask | wb.mask)) != 0)
        return std::nullopt;
    FaultRange out;
    out.mask = wa.mask & wb.mask;
    out.addr = ((wa.addr & ~wa.mask) | (wb.addr & ~wb.mask)) & ~out.mask;
    return out;
}

std::uint64_t
rangeSize(const FaultRange &range)
{
    return std::uint64_t{1} << popcount64(range.mask);
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Bit: return "single-bit";
      case FaultKind::Word: return "single-word";
      case FaultKind::Column: return "single-column";
      case FaultKind::Row: return "single-row";
      case FaultKind::Bank: return "single-bank";
      case FaultKind::MultiBank: return "multi-bank";
      case FaultKind::MultiRank: return "multi-rank";
    }
    return "?";
}

} // namespace xed::faultsim
