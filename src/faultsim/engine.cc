#include "faultsim/engine.hh"

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "faultsim/zero_filter.hh"
#include "obs/trace.hh"

namespace xed::faultsim
{

namespace
{

/**
 * Reserve enough for any fault set a DIMM realistically draws:
 * expected faults per DIMM over 7 years is ~0.07 (Table I), so 64
 * concurrent events is astronomically beyond the high-water mark.
 * Reserving up front makes the steady-state per-system loop
 * allocation-free (pinned by the counting-allocator test).
 */
constexpr std::size_t eventReserve = 64;

/** Default faulty-path evaluation batch (McConfig::evalBatch auto). */
constexpr std::size_t defaultEvalBatch = 16;

/** Backstop against absurd batch sizes reserving gigabytes of queue. */
constexpr std::size_t maxEvalBatch = std::size_t{1} << 20;

/**
 * Resolve McConfig::evalBatch: a nonzero config value wins, else the
 * XED_MC_EVAL_BATCH environment variable, else the default. The env
 * knob has no "auto" spelling (unset already means auto), so an
 * explicit 0 -- like any garbage -- throws an error naming the knob
 * instead of silently picking some batch size.
 */
std::size_t
resolveEvalBatch(unsigned requested)
{
    if (requested != 0)
        return std::min<std::size_t>(requested, maxEvalBatch);
    if (const auto env = envU64Positive("XED_MC_EVAL_BATCH")) {
        if (*env > maxEvalBatch)
            throw std::runtime_error(
                "XED_MC_EVAL_BATCH: " + std::to_string(*env) +
                " is not a sane evaluation batch size");
        return static_cast<std::size_t>(*env);
    }
    return defaultEvalBatch;
}

/**
 * Simulate systems [begin, end) and accumulate into @p partial. Each
 * system's RNG is derived from (seed, s) alone, so the shard
 * boundaries never affect the sampled faults.
 *
 * All sampling invariants (FIT sums, kind CDF, exp(-lambda), shape)
 * are hoisted into one immutable SampleContext before the loop, and
 * the event/scratch buffers are reused across systems: the loop body
 * re-derives nothing and allocates nothing in steady state.
 */
void
runShard(const Scheme &scheme, const McConfig &config,
         const AddressLayout &layout, const FitTable &fit,
         const DimmShape &shape, std::uint64_t begin, std::uint64_t end,
         McResult &partial)
{
    // Progress is flushed in batches so the hot loop pays one relaxed
    // fetch_add per progressBatch systems, not per system.
    constexpr std::uint64_t progressBatch = 256;
    std::uint64_t batchedSystems = 0;
    std::uint64_t batchedFailures = 0;
    const auto flushProgress = [&] {
        if (config.progress && batchedSystems) {
            config.progress->systemsDone.fetch_add(
                batchedSystems, std::memory_order_relaxed);
            config.progress->failedSystems.fetch_add(
                batchedFailures, std::memory_order_relaxed);
            batchedSystems = batchedFailures = 0;
        }
    };

    const double hours = config.years * hoursPerYear;
    const SampleContext ctx(fit, layout, shape, hours,
                            config.scrubIntervalHours, config.sampler);
    // Only credit years that were fully simulated: a run with
    // years = 0.5 must not report a year-1 failure probability.
    unsigned creditYears = 0;
    while (creditYears < 7 &&
           (creditYears + 1) * hoursPerYear <= hours)
        ++creditYears;

    std::vector<FaultEvent> events;
    events.reserve(eventReserve);
    EvalScratch scratch;
    scratch.reserve(eventReserve);
    // Forensic exemplars are capped, so reserving the cap up front
    // keeps the loop body allocation-free.
    partial.autopsy.reserve(McResult::maxAutopsyRecords);

    // Year crediting is batched per shard: the loop bumps local
    // counters and one addMany per year flushes them at the end.
    // Pure integer totals, so the result is byte-identical to the
    // per-system add() it replaces.
    std::array<std::uint64_t, 8> failByYear{};
    std::uint64_t systemsTotal = 0;

    const std::uint64_t mixedSeed = Rng::mixSeed(config.seed);
    const auto simulateSystem = [&](std::uint64_t s) {
        Rng rng = Rng::streamMixed(mixedSeed, s);
        SchemeFailure fail;
        fail.timeHours = -1;
        for (unsigned ch = 0; ch < config.channels; ++ch) {
            // Zero-fault lifetimes (>= 93% of channels at Table I
            // rates) cost one count draw and nothing else.
            const unsigned count = ctx.sampleFaultCount(rng);
            if (count == 0)
                continue;
            sampleDimmFaultsInto(rng, ctx, count, events);
            if (const auto f =
                    scheme.evaluateDimm(events, layout, rng, scratch)) {
                if (fail.timeHours < 0 || f->timeHours < fail.timeHours)
                    fail = *f;
            }
        }
        ++systemsTotal;
        if (fail.timeHours >= 0) {
            for (unsigned y = creditYears;
                 y >= 1 && fail.timeHours <= y * hoursPerYear; --y)
                ++failByYear[y];
            partial.failureTypes.inc(fail.type);
            partial.attribution.record(fail.cls, fail.kindsMask,
                                       fail.outcome);
            if (partial.autopsy.size() < McResult::maxAutopsyRecords)
                partial.autopsy.push_back({s, fail.timeHours, fail.type,
                                           fail.kindsMask, fail.cls,
                                           fail.outcome});
            ++batchedFailures;
        }
        if (++batchedSystems >= progressBatch)
            flushProgress();
    };

    // Faulty-path evaluation batch (DESIGN.md section 4j): survivor
    // lanes are queued and flushed in runs of evalBatch back-to-back
    // simulateSystem calls, so the expensive scheme-evaluation body
    // executes over a dense batch (warm scratch buffers and probability
    // cache, no interleaved filter work) instead of one lane at a time.
    // Survivors are collected and flushed in ascending system order and
    // each one runs the unmodified scalar body from its own derived
    // stream; zero-lane crediting is pure integer bookkeeping that
    // commutes with evaluation, so the result is byte-identical for
    // every batch size, including 1.
    const std::size_t evalBatch = resolveEvalBatch(config.evalBatch);
    std::vector<std::uint64_t> survivors;
    survivors.reserve(evalBatch);
    const auto flushSurvivors = [&] {
        for (const std::uint64_t id : survivors)
            simulateSystem(id);
        survivors.clear();
    };
    const auto deferSystem = [&](std::uint64_t id) {
        survivors.push_back(id);
        if (survivors.size() >= evalBatch)
            flushSurvivors();
    };

    // Vector zero-fault filter (Knuth sampler only: its zero test is
    // one draw + compare per channel). A batch whose streams are all
    // provably zero-fault is credited without constructing a single
    // Rng -- identical bookkeeping to simulating each zero system --
    // and every other lane re-runs the unmodified scalar body from a
    // freshly derived stream, in ascending order. Results are
    // byte-identical at every level; only the time changes.
    const SimdLevel level = simdLevel();
    const unsigned filterWidth =
        config.sampler == PoissonSampler::Knuth ? zeroFilterWidth(level)
                                                : 0;
    std::uint64_t s = begin;
    if (filterWidth != 0) {
        const std::uint32_t allZero = (1u << filterWidth) - 1;
        for (; s + filterWidth <= end; s += filterWidth) {
            const std::uint32_t zeroMask =
                zeroFaultMask(level, mixedSeed, s, filterWidth,
                              config.channels, ctx.knuthZeroMax());
            if (zeroMask == allZero) {
                systemsTotal += filterWidth;
                batchedSystems += filterWidth;
                if (batchedSystems >= progressBatch)
                    flushProgress();
                continue;
            }
            for (unsigned i = 0; i < filterWidth; ++i) {
                if (zeroMask & (1u << i)) {
                    ++systemsTotal;
                    if (++batchedSystems >= progressBatch)
                        flushProgress();
                } else {
                    deferSystem(s + i);
                }
            }
        }
    }
    for (; s < end; ++s)
        deferSystem(s);
    flushSurvivors();
    flushProgress();
    for (unsigned y = 1; y <= creditYears; ++y)
        partial.failByYear[y].addMany(failByYear[y], systemsTotal);
}

/**
 * Resolve McConfig::threads: 0 = XED_MC_THREADS, else the hardware.
 * A malformed XED_MC_THREADS (garbage, sign, overflow) throws instead
 * of silently wrapping or resolving to "auto"; the explicit value 0
 * keeps its documented "auto" meaning.
 */
unsigned
resolveThreads(unsigned requested, std::uint64_t systems)
{
    std::uint64_t threads = requested;
    if (threads == 0) {
        if (const auto env = envU64("XED_MC_THREADS")) {
            if (*env > std::numeric_limits<unsigned>::max())
                throw std::runtime_error(
                    "XED_MC_THREADS: " + std::to_string(*env) +
                    " is not a sane worker-thread count");
            threads = *env;
        }
        if (threads == 0)
            threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // No point spawning workers with empty shards.
    return static_cast<unsigned>(
        std::min<std::uint64_t>(threads, std::max<std::uint64_t>(
                                             systems, 1)));
}

} // namespace

McResult
runMonteCarloShard(const Scheme &scheme, const McConfig &config,
                   std::uint64_t begin, std::uint64_t end)
{
    XED_TRACE_SPAN_ARG("mc.shard", "engine", "systems", end - begin);
    const AddressLayout layout(config.geometry);
    const DimmShape shape = scheme.dimmShape();
    McResult partial;
    if (begin < end)
        runShard(scheme, config, layout, config.fit, shape, begin, end,
                 partial);
    return partial;
}

McResult
runMonteCarlo(const Scheme &scheme, const McConfig &config)
{
    const AddressLayout layout(config.geometry);
    const FitTable &fit = config.fit;
    const DimmShape shape = scheme.dimmShape();
    const unsigned threads = resolveThreads(config.threads,
                                            config.systems);

    if (threads == 1) {
        McResult result;
        runShard(scheme, config, layout, fit, shape, 0, config.systems,
                 result);
        return result;
    }

    // Fixed contiguous shards: thread t owns systems
    // [t * chunk, ...), the first (systems % threads) shards taking one
    // extra. Merging integer counts shard-by-shard is exact, so the
    // reduction below is bit-identical to the single-thread path.
    std::vector<McResult> partials(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::uint64_t chunk = config.systems / threads;
    const std::uint64_t extra = config.systems % threads;
    std::uint64_t begin = 0;
    for (unsigned t = 0; t < threads; ++t) {
        const std::uint64_t end = begin + chunk + (t < extra ? 1 : 0);
        workers.emplace_back([&, begin, end, t] {
            XED_TRACE_SPAN_ARG("mc.worker", "engine", "systems",
                               end - begin);
            runShard(scheme, config, layout, fit, shape, begin, end,
                     partials[t]);
        });
        begin = end;
    }
    for (auto &worker : workers)
        worker.join();

    McResult result;
    for (const auto &partial : partials)
        result.merge(partial);
    return result;
}

} // namespace xed::faultsim
