#include "faultsim/engine.hh"

#include <cmath>

namespace xed::faultsim
{

McResult
runMonteCarlo(const Scheme &scheme, const McConfig &config)
{
    McResult result;
    Rng rng(config.seed);
    const AddressLayout layout(config.geometry);
    const FitTable fit;
    const DimmShape shape = scheme.dimmShape();
    const double hours = config.years * hoursPerYear;
    const unsigned lastYear =
        static_cast<unsigned>(std::lround(config.years));

    for (std::uint64_t s = 0; s < config.systems; ++s) {
        double failTime = -1;
        const char *failType = nullptr;
        for (unsigned ch = 0; ch < config.channels; ++ch) {
            const auto events =
                sampleDimmFaults(rng, fit, layout, shape, hours,
                                 config.scrubIntervalHours);
            if (events.empty())
                continue;
            if (const auto f = scheme.evaluateDimm(events, layout, rng)) {
                if (failTime < 0 || f->timeHours < failTime) {
                    failTime = f->timeHours;
                    failType = f->type;
                }
            }
        }
        for (unsigned y = 1; y <= lastYear && y < 8; ++y)
            result.failByYear[y].add(failTime >= 0 &&
                                     failTime <= y * hoursPerYear);
        if (failTime >= 0)
            result.failureTypes.inc(failType);
    }
    return result;
}

} // namespace xed::faultsim
