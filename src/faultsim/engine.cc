#include "faultsim/engine.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace xed::faultsim
{

namespace
{

/**
 * Simulate systems [begin, end) and accumulate into @p partial. Each
 * system's RNG is derived from (seed, s) alone, so the shard
 * boundaries never affect the sampled faults.
 */
void
runShard(const Scheme &scheme, const McConfig &config,
         const AddressLayout &layout, const FitTable &fit,
         const DimmShape &shape, std::uint64_t begin, std::uint64_t end,
         McResult &partial)
{
    // Progress is flushed in batches so the hot loop pays one relaxed
    // fetch_add per progressBatch systems, not per system.
    constexpr std::uint64_t progressBatch = 256;
    std::uint64_t batchedSystems = 0;
    std::uint64_t batchedFailures = 0;
    const auto flushProgress = [&] {
        if (config.progress && batchedSystems) {
            config.progress->systemsDone.fetch_add(
                batchedSystems, std::memory_order_relaxed);
            config.progress->failedSystems.fetch_add(
                batchedFailures, std::memory_order_relaxed);
            batchedSystems = batchedFailures = 0;
        }
    };

    const double hours = config.years * hoursPerYear;
    for (std::uint64_t s = begin; s < end; ++s) {
        Rng rng = Rng::stream(config.seed, s);
        double failTime = -1;
        const char *failType = nullptr;
        for (unsigned ch = 0; ch < config.channels; ++ch) {
            const auto events =
                sampleDimmFaults(rng, fit, layout, shape, hours,
                                 config.scrubIntervalHours);
            if (events.empty())
                continue;
            if (const auto f = scheme.evaluateDimm(events, layout, rng)) {
                if (failTime < 0 || f->timeHours < failTime) {
                    failTime = f->timeHours;
                    failType = f->type;
                }
            }
        }
        // Only credit years that were fully simulated: a run with
        // years = 0.5 must not report a year-1 failure probability.
        for (unsigned y = 1; y < 8 && y * hoursPerYear <= hours; ++y)
            partial.failByYear[y].add(failTime >= 0 &&
                                      failTime <= y * hoursPerYear);
        if (failTime >= 0)
            partial.failureTypes.inc(failType);

        batchedFailures += failTime >= 0 ? 1 : 0;
        if (++batchedSystems == progressBatch)
            flushProgress();
    }
    flushProgress();
}

/** Resolve McConfig::threads: 0 = XED_MC_THREADS, else the hardware. */
unsigned
resolveThreads(unsigned requested, std::uint64_t systems)
{
    unsigned threads = requested;
    if (threads == 0) {
        if (const char *env = std::getenv("XED_MC_THREADS"))
            threads = static_cast<unsigned>(
                std::strtoul(env, nullptr, 10));
        if (threads == 0)
            threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // No point spawning workers with empty shards.
    return static_cast<unsigned>(
        std::min<std::uint64_t>(threads, std::max<std::uint64_t>(
                                             systems, 1)));
}

} // namespace

McResult
runMonteCarloShard(const Scheme &scheme, const McConfig &config,
                   std::uint64_t begin, std::uint64_t end)
{
    const AddressLayout layout(config.geometry);
    const DimmShape shape = scheme.dimmShape();
    McResult partial;
    if (begin < end)
        runShard(scheme, config, layout, config.fit, shape, begin, end,
                 partial);
    return partial;
}

McResult
runMonteCarlo(const Scheme &scheme, const McConfig &config)
{
    const AddressLayout layout(config.geometry);
    const FitTable &fit = config.fit;
    const DimmShape shape = scheme.dimmShape();
    const unsigned threads = resolveThreads(config.threads,
                                            config.systems);

    if (threads == 1) {
        McResult result;
        runShard(scheme, config, layout, fit, shape, 0, config.systems,
                 result);
        return result;
    }

    // Fixed contiguous shards: thread t owns systems
    // [t * chunk, ...), the first (systems % threads) shards taking one
    // extra. Merging integer counts shard-by-shard is exact, so the
    // reduction below is bit-identical to the single-thread path.
    std::vector<McResult> partials(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::uint64_t chunk = config.systems / threads;
    const std::uint64_t extra = config.systems % threads;
    std::uint64_t begin = 0;
    for (unsigned t = 0; t < threads; ++t) {
        const std::uint64_t end = begin + chunk + (t < extra ? 1 : 0);
        workers.emplace_back([&, begin, end, t] {
            runShard(scheme, config, layout, fit, shape, begin, end,
                     partials[t]);
        });
        begin = end;
    }
    for (auto &worker : workers)
        worker.join();

    McResult result;
    for (const auto &partial : partials)
        result.merge(partial);
    return result;
}

} // namespace xed::faultsim
