/**
 * @file
 * Vectorized zero-fault filter for the Monte-Carlo engine.
 *
 * Under the Knuth Poisson sampler, a channel lifetime is zero-fault
 * iff its single count draw satisfies (next() >> 11) <= zeroMax
 * (SampleContext's integer form of u <= exp(-lambda)), and a
 * zero-fault channel consumes exactly that one draw. So a whole
 * system is zero-fault iff the FIRST `channels` raw draws of its
 * stream each pass the compare -- and when any draw fails, the system
 * is nonzero regardless of what the later draws mean. That makes the
 * filter a pure function of (mixedSeed, system index): the kernels
 * run splitmix64 seeding plus `channels` xoshiro256** steps across 8
 * lanes of 64-bit vectors and one compare rejects 8 systems at a
 * time. At Table I rates >= 93% of channels are zero-fault, so this
 * is the dominant branch of the engine loop.
 *
 * Byte-identity: the filter never touches any Rng object. Systems it
 * flags as zero-fault produce exactly the bookkeeping a full scalar
 * simulation of a zero-fault system produces (one system credited,
 * no failure, no autopsy); systems it cannot prove zero are re-run
 * through the unmodified scalar body from a freshly derived stream.
 * Campaign stores and goldens are unchanged at every dispatch level.
 */

#ifndef XED_FAULTSIM_ZERO_FILTER_HH
#define XED_FAULTSIM_ZERO_FILTER_HH

#include <cstdint>

#include "common/simd.hh"

namespace xed::faultsim
{

/**
 * Lane count of the vector zero-fault kernel at @p level: 8 for
 * Avx2/Avx512, 0 where no vector path exists (Scalar, and Neon --
 * AdvSIMD has no packed 64-bit multiply, so splitmix64 seeding does
 * not vectorize profitably there). Width 0 tells the engine to skip
 * batching entirely.
 */
unsigned zeroFilterWidth(SimdLevel level);

/**
 * Bitmask over systems [firstSystem, firstSystem + count): bit i is
 * set iff each of the first @p channels draws of stream
 * (mixedSeed, firstSystem + i) satisfies (draw >> 11) <= zeroMax,
 * i.e. the system is provably all-zero-fault under the Knuth sampler.
 *
 * @p count must be at most 32; the vector kernels serve count ==
 * zeroFilterWidth(level) (and the AVX2 4-lane half), anything else
 * falls back to a scalar replay of the same draws. All levels return
 * identical masks.
 */
std::uint32_t zeroFaultMask(SimdLevel level, std::uint64_t mixedSeed,
                            std::uint64_t firstSystem, unsigned count,
                            unsigned channels, std::uint64_t zeroMax);

} // namespace xed::faultsim

#endif // XED_FAULTSIM_ZERO_FILTER_HH
