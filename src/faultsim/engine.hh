/**
 * @file
 * The Monte-Carlo reliability engine (Section III of the paper).
 *
 * For each simulated system (4 channels x 1 dual-rank DIMM each, Table
 * V), runtime faults are sampled per chip from the Table I FIT rates
 * over a 7-year lifetime and fed to a correction-scheme evaluator; the
 * system "fails" if the scheme is defeated at any time. The engine
 * reports the probability of system failure as a function of time,
 * which is exactly what Figures 1, 7, 8, 9 and 10 plot.
 */

#ifndef XED_FAULTSIM_ENGINE_HH
#define XED_FAULTSIM_ENGINE_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "faultsim/scheme.hh"
#include "obs/forensics.hh"

namespace xed::faultsim
{

/**
 * Live progress shared by the simulation workers and a sampling
 * thread (the campaign runner's telemetry). Workers flush in batches,
 * so the counters lag the truth by at most a few hundred systems;
 * reads are relaxed snapshots suitable for rate/ETA estimation only.
 */
struct McProgress
{
    std::atomic<std::uint64_t> systemsDone{0};
    std::atomic<std::uint64_t> failedSystems{0};
};

struct McConfig
{
    std::uint64_t systems = 200000;
    double years = evaluationYears;
    unsigned channels = 4; ///< one dual-rank DIMM per channel (Table V)
    std::uint64_t seed = 0xFA517;
    dram::ChipGeometry geometry{};
    /**
     * Patrol-scrub period in hours (repair model): transient faults
     * disappear at the next scrub boundary, so multi-chip combinations
     * must be concurrent. 0 (the paper's setting) disables scrubbing
     * and lets faults accumulate for the whole lifetime.
     */
    double scrubIntervalHours = 0;
    /**
     * Worker threads sharding the system loop. 0 (the default) means
     * "auto": the XED_MC_THREADS environment variable if set, else
     * std::thread::hardware_concurrency(). Because every system s
     * draws from its own counter-based RNG stream (seed, s), the
     * result is bit-identical for every thread count, including 1.
     */
    unsigned threads = 0;
    /**
     * Faulty-path evaluation batch (DESIGN.md section 4j): systems the
     * zero-fault filter cannot prove clean are queued and evaluated in
     * runs of this many back-to-back scheme evaluations, amortizing
     * dispatch and table setup across survivors. 0 (the default) means
     * "auto": the XED_MC_EVAL_BATCH environment variable if set (a
     * strict parse; garbage or an explicit 0 throws), else 16. Each
     * survivor still runs the unmodified per-system body in ascending
     * system order, so the result is byte-identical for every batch
     * size, including 1.
     */
    unsigned evalBatch = 0;
    /**
     * Per-chip FIT rates. Defaults to Table I; campaign specs may
     * override individual entries (sensitivity studies, vendor data).
     */
    FitTable fit{};
    /**
     * Poisson fault-count sampler. Knuth (default) is the historical
     * k+1-uniform loop and is the bit-identical golden path; InvCdf
     * draws one uniform through a precomputed inverse-CDF table --
     * statistically exact and deterministic per seed, but a different
     * draw sequence, so results differ from Knuth by Monte-Carlo
     * noise only. Campaign specs select it via "sampler": "invcdf"
     * (part of the spec hash); benches via XED_MC_SAMPLER.
     */
    PoissonSampler sampler = PoissonSampler::Knuth;
    /**
     * Optional live progress sink; when non-null the workers add
     * completed systems / observed failures in batches. Purely
     * observational: never affects the sampled faults or the result.
     */
    McProgress *progress = nullptr;
};

/**
 * Forensic detail for one failed system: enough to reconstruct what
 * defeated the scheme without rerunning. The engine keeps only the
 * first few per result (McResult::maxAutopsyRecords) -- a capped,
 * deterministic exemplar set, not a full log.
 */
struct AutopsyRecord
{
    std::uint64_t system = 0; ///< global system index
    double timeHours = 0;     ///< earliest failure time
    const char *type = "";    ///< failure-type counter label
    std::uint8_t kindsMask = 0;
    obs::FailureClass cls = obs::FailureClass::Due;
    obs::DetectionOutcome outcome = obs::DetectionOutcome::None;
};

struct McResult
{
    /** Lowest-system-index exemplars kept across merges. */
    static constexpr std::size_t maxAutopsyRecords = 32;

    /** P(system failed by end of year y), y = 1..7 (index 0 unused). */
    std::array<Proportion, 8> failByYear{};
    /** Failure-cause breakdown (counts of failed systems by type). */
    CounterSet failureTypes;
    /** Class x kind-set x detection-outcome failure attribution. */
    obs::FailureAttribution attribution;
    /** Up to maxAutopsyRecords exemplar failures, system-index order. */
    std::vector<AutopsyRecord> autopsy;

    /** Final-lifetime probability of system failure (the last year
     *  that was actually simulated). */
    double
    probFailure() const
    {
        for (unsigned y = 7; y >= 1; --y)
            if (failByYear[y].trials() > 0)
                return failByYear[y].value();
        return 0.0;
    }

    /** Reduce another shard's partial result into this one. All counts
     *  are integers, so merging is exact; the autopsy exemplars keep
     *  the globally lowest system indices, so the reduction is
     *  order-insensitive too. */
    void
    merge(const McResult &other)
    {
        for (unsigned y = 0; y < failByYear.size(); ++y)
            failByYear[y].merge(other.failByYear[y]);
        failureTypes.merge(other.failureTypes);
        attribution.merge(other.attribution);
        if (!other.autopsy.empty()) {
            autopsy.insert(autopsy.end(), other.autopsy.begin(),
                           other.autopsy.end());
            std::sort(autopsy.begin(), autopsy.end(),
                      [](const AutopsyRecord &a, const AutopsyRecord &b) {
                          return a.system < b.system;
                      });
            if (autopsy.size() > maxAutopsyRecords)
                autopsy.resize(maxAutopsyRecords);
        }
    }
};

/**
 * Run the Monte-Carlo for one scheme, sharding the system loop over
 * config.threads workers (see McConfig::threads). System s derives its
 * RNG as Rng::stream(config.seed, s), so the returned McResult is
 * bit-identical for any thread count.
 */
McResult runMonteCarlo(const Scheme &scheme, const McConfig &config);

/**
 * Simulate only systems [begin, end) of the campaign described by
 * @p config, single-threaded, and return that shard's partial result.
 * System s still draws from Rng::stream(config.seed, s), so
 * concatenating (merging) adjacent shards reproduces runMonteCarlo
 * bit-for-bit regardless of how the range was cut -- the primitive the
 * campaign runner builds deterministic, resumable shards from. An
 * empty range (begin == end) returns the merge identity: a McResult
 * with zero trials everywhere.
 */
McResult runMonteCarloShard(const Scheme &scheme, const McConfig &config,
                            std::uint64_t begin, std::uint64_t end);

} // namespace xed::faultsim

#endif // XED_FAULTSIM_ENGINE_HH
