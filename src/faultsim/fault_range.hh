/**
 * @file
 * Fault-range algebra in the style of FaultSim (Nair, Roberts & Qureshi,
 * ACM TACO 2015).
 *
 * A fault range is an {address, wildcard-mask} pair over a chip's
 * bit-address space (bank | row | col | bit). Mask bits set to 1 are
 * "don't care": a single-bit fault has mask 0, a row failure wildcards
 * the column and bit fields, a whole-chip failure wildcards everything.
 * Two ranges collide in some 64-bit word iff their fixed bits agree once
 * the within-word bit field is wildcarded -- that is exactly the
 * condition for two chips to corrupt the same ECC codeword.
 */

#ifndef XED_FAULTSIM_FAULT_RANGE_HH
#define XED_FAULTSIM_FAULT_RANGE_HH

#include <cstdint>
#include <optional>

#include "common/rng.hh"
#include "dram/geometry.hh"
#include "faultsim/fit_rates.hh"

namespace xed::faultsim
{

/** {address, wildcard mask} over the chip bit-address space. */
struct FaultRange
{
    std::uint64_t addr = 0;
    std::uint64_t mask = 0;
};

/** Bit-address layout helper derived from the chip geometry. */
struct AddressLayout
{
    explicit AddressLayout(const dram::ChipGeometry &g)
        : bitBits(g.bitBits), colBits(g.colBits), rowBits(g.rowBits),
          bankBits(g.bankBits)
    {
    }

    unsigned bitBits;
    unsigned colBits;
    unsigned rowBits;
    unsigned bankBits;

    std::uint64_t bitMask() const { return lowMask(bitBits); }
    std::uint64_t
    colMask() const
    {
        return lowMask(colBits) << bitBits;
    }
    std::uint64_t
    rowMask() const
    {
        return lowMask(rowBits) << (bitBits + colBits);
    }
    std::uint64_t
    bankMask() const
    {
        return lowMask(bankBits) << (bitBits + colBits + rowBits);
    }
    std::uint64_t
    allMask() const
    {
        return lowMask(bitBits + colBits + rowBits + bankBits);
    }
};

/** Draw a random fault range of the given kind. */
FaultRange randomRange(Rng &rng, const AddressLayout &layout,
                       FaultKind kind);

/**
 * True iff the two ranges overlap some 64-bit word (the within-word bit
 * field is ignored): the condition for two chips' faults to hit the
 * same codeword / parity group.
 */
bool intersectAtWord(const FaultRange &a, const FaultRange &b,
                     const AddressLayout &layout);

/** Exact intersection including the bit field (same faulty cell). */
bool intersectExact(const FaultRange &a, const FaultRange &b);

/**
 * Range intersection (word granularity). Used for the >= 3-chip rules
 * of Double-Chipkill: three ranges share a word iff the pairwise
 * refinement is non-empty.
 */
std::optional<FaultRange> intersectRange(const FaultRange &a,
                                         const FaultRange &b,
                                         const AddressLayout &layout);

/** Number of addresses covered by a range (2^popcount(mask)). */
std::uint64_t rangeSize(const FaultRange &range);

} // namespace xed::faultsim

#endif // XED_FAULTSIM_FAULT_RANGE_HH
