#include "faultsim/zero_filter.hh"

#include <cassert>

#include "common/rng.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace xed::faultsim
{

namespace
{

// splitmix64 / stream-derivation constants, kept textually in sync
// with Rng (rng.hh); the per-level equivalence tests pin the match.
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kMix1 = 0xBF58476D1CE4E5B9ull;
constexpr std::uint64_t kMix2 = 0x94D049BB133111EBull;
constexpr std::uint64_t kStream = 0xD2B74407B1CE6E93ull;

/** Reference path: replay the exact Rng draws lane by lane. */
std::uint32_t
zeroFaultMaskScalar(std::uint64_t mixedSeed, std::uint64_t firstSystem,
                    unsigned count, unsigned channels,
                    std::uint64_t zeroMax)
{
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < count; ++i) {
        Rng rng = Rng::streamMixed(mixedSeed, firstSystem + i);
        bool zero = true;
        for (unsigned ch = 0; zero && ch < channels; ++ch)
            zero = (rng.next() >> 11) <= zeroMax;
        mask |= static_cast<std::uint32_t>(zero) << i;
    }
    return mask;
}

#if defined(__x86_64__)

// Vector helpers are free functions: a lambda inside a
// target-attributed function does NOT inherit the target, so GCC
// refuses to inline the intrinsics into it.

/** 64x64 multiply via the classic three-vpmuludq emulation. */
__attribute__((target("avx2"))) inline __m256i
mul64Avx2(__m256i a, __m256i b)
{
    const __m256i hi = _mm256_add_epi64(
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
    return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                            _mm256_slli_epi64(hi, 32));
}

__attribute__((target("avx2"))) inline __m256i
rotlAvx2(__m256i x, int k)
{
    return _mm256_or_si256(_mm256_slli_epi64(x, k),
                           _mm256_srli_epi64(x, 64 - k));
}

/** splitmix64 finalizer (without the kGolden add), 4 lanes. */
__attribute__((target("avx2"))) inline __m256i
mixAvx2(__m256i z)
{
    z = mul64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                  _mm256_set1_epi64x(static_cast<long long>(kMix1)));
    z = mul64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                  _mm256_set1_epi64x(static_cast<long long>(kMix2)));
    return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/**
 * 4 lanes of splitmix64 + xoshiro256** on AVX2. The 64x64 multiplies
 * (splitmix64 seeding only; the xoshiro step needs none) use the
 * classic three-vpmuludq emulation; everything else is shifts, adds
 * and xors, so each value is computed with exactly the scalar
 * semantics -- the compare threshold and the draw are both below
 * 2^53, which keeps the signed 64-bit compare valid.
 */
__attribute__((target("avx2"))) std::uint32_t
zeroFaultMask4Avx2(std::uint64_t mixedSeed, std::uint64_t firstSystem,
                   unsigned channels, std::uint64_t zeroMax)
{
    // seed = mixedSeed ^ mix64(~index * kStream); mix64 adds kGolden
    // before finalizing.
    const __m256i idx = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(firstSystem)),
        _mm256_setr_epi64x(0, 1, 2, 3));
    __m256i z = mul64Avx2(_mm256_xor_si256(idx, _mm256_set1_epi64x(-1)),
                      _mm256_set1_epi64x(static_cast<long long>(kStream)));
    z = mixAvx2(_mm256_add_epi64(
        z, _mm256_set1_epi64x(static_cast<long long>(kGolden))));
    __m256i x = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(mixedSeed)), z);

    // Rng constructor: four splitmix64 expansions of the seed.
    __m256i s[4];
    for (int w = 0; w < 4; ++w) {
        x = _mm256_add_epi64(
            x, _mm256_set1_epi64x(static_cast<long long>(kGolden)));
        s[w] = mixAvx2(x);
    }

    const __m256i zeroMaxV =
        _mm256_set1_epi64x(static_cast<long long>(zeroMax));
    __m256i bad = _mm256_setzero_si256();
    for (unsigned ch = 0; ch < channels; ++ch) {
        // result = rotl(s1 * 5, 7) * 9; *5 and *9 are shift-adds.
        __m256i r = rotlAvx2(
            _mm256_add_epi64(s[1], _mm256_slli_epi64(s[1], 2)), 7);
        r = _mm256_add_epi64(r, _mm256_slli_epi64(r, 3));
        const __m256i draw = _mm256_srli_epi64(r, 11);
        bad = _mm256_or_si256(bad,
                              _mm256_cmpgt_epi64(draw, zeroMaxV));

        const __m256i t = _mm256_slli_epi64(s[1], 17);
        s[2] = _mm256_xor_si256(s[2], s[0]);
        s[3] = _mm256_xor_si256(s[3], s[1]);
        s[1] = _mm256_xor_si256(s[1], s[2]);
        s[0] = _mm256_xor_si256(s[0], s[3]);
        s[2] = _mm256_xor_si256(s[2], t);
        s[3] = rotlAvx2(s[3], 45);
    }
    const unsigned badBits = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(bad)));
    return ~badBits & 0xFu;
}

// _mm512_undefined_epi32() inside the GCC intrinsic headers trips
// -Wuninitialized; the value is fully overwritten, known false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/** splitmix64 finalizer (without the kGolden add), 8 lanes. */
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))
inline __m512i
mixAvx512(__m512i z)
{
    z = _mm512_mullo_epi64(
        _mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
        _mm512_set1_epi64(static_cast<long long>(kMix1)));
    z = _mm512_mullo_epi64(
        _mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
        _mm512_set1_epi64(static_cast<long long>(kMix2)));
    return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

/** 8 lanes on AVX-512 (F+DQ: vpmullq does the 64-bit multiplies). */
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))
std::uint32_t
zeroFaultMask8Avx512(std::uint64_t mixedSeed, std::uint64_t firstSystem,
                     unsigned channels, std::uint64_t zeroMax)
{
    const __m512i idx = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(firstSystem)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    __m512i z = _mm512_mullo_epi64(
        _mm512_xor_si512(idx, _mm512_set1_epi64(-1)),
        _mm512_set1_epi64(static_cast<long long>(kStream)));
    z = mixAvx512(_mm512_add_epi64(
        z, _mm512_set1_epi64(static_cast<long long>(kGolden))));
    __m512i x = _mm512_xor_si512(
        _mm512_set1_epi64(static_cast<long long>(mixedSeed)), z);

    __m512i s[4];
    for (int w = 0; w < 4; ++w) {
        x = _mm512_add_epi64(
            x, _mm512_set1_epi64(static_cast<long long>(kGolden)));
        s[w] = mixAvx512(x);
    }

    const __m512i zeroMaxV =
        _mm512_set1_epi64(static_cast<long long>(zeroMax));
    __mmask8 bad = 0;
    for (unsigned ch = 0; ch < channels; ++ch) {
        __m512i r = _mm512_rol_epi64(
            _mm512_add_epi64(s[1], _mm512_slli_epi64(s[1], 2)), 7);
        r = _mm512_add_epi64(r, _mm512_slli_epi64(r, 3));
        const __m512i draw = _mm512_srli_epi64(r, 11);
        bad = static_cast<__mmask8>(
            bad | _mm512_cmpgt_epu64_mask(draw, zeroMaxV));

        const __m512i t = _mm512_slli_epi64(s[1], 17);
        s[2] = _mm512_xor_si512(s[2], s[0]);
        s[3] = _mm512_xor_si512(s[3], s[1]);
        s[1] = _mm512_xor_si512(s[1], s[2]);
        s[0] = _mm512_xor_si512(s[0], s[3]);
        s[2] = _mm512_xor_si512(s[2], t);
        s[3] = _mm512_rol_epi64(s[3], 45);
    }
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(~bad));
}
#pragma GCC diagnostic pop

#endif // __x86_64__

} // namespace

unsigned
zeroFilterWidth(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Avx2:
    case SimdLevel::Avx512:
        return 8;
    default:
        return 0;
    }
}

std::uint32_t
zeroFaultMask(SimdLevel level, std::uint64_t mixedSeed,
              std::uint64_t firstSystem, unsigned count,
              unsigned channels, std::uint64_t zeroMax)
{
    assert(count <= 32);
#if defined(__x86_64__)
    if (level == SimdLevel::Avx512 && count == 8)
        return zeroFaultMask8Avx512(mixedSeed, firstSystem, channels,
                                    zeroMax);
    if (level == SimdLevel::Avx2 && count == 8)
        return zeroFaultMask4Avx2(mixedSeed, firstSystem, channels,
                                  zeroMax) |
               (zeroFaultMask4Avx2(mixedSeed, firstSystem + 4, channels,
                                   zeroMax)
                << 4);
    if (level == SimdLevel::Avx2 && count == 4)
        return zeroFaultMask4Avx2(mixedSeed, firstSystem, channels,
                                  zeroMax);
#else
    (void)level;
#endif
    return zeroFaultMaskScalar(mixedSeed, firstSystem, count, channels,
                               zeroMax);
}

} // namespace xed::faultsim
