/**
 * @file
 * DRAM failure rates from field data (Table I of the paper, originally
 * Sridharan & Liberty, "A study of DRAM failures in the field", SC'12),
 * in FIT (failures per billion device-hours) per chip.
 */

#ifndef XED_FAULTSIM_FIT_RATES_HH
#define XED_FAULTSIM_FIT_RATES_HH

#include <array>
#include <string>

namespace xed::faultsim
{

/** Fault granularities of Table I. */
enum class FaultKind
{
    Bit,       ///< single bit
    Word,      ///< single word (multi-bit within one word)
    Column,    ///< single column (one bit per affected word)
    Row,       ///< single row
    Bank,      ///< single bank
    MultiBank, ///< multiple banks: the whole chip misbehaves
    MultiRank, ///< shared circuitry: same chip position in other ranks too
};

constexpr unsigned numFaultKinds = 7;

const char *faultKindName(FaultKind kind);

/** True iff faults of this kind corrupt >1 bit of some 64-bit word. */
constexpr bool
multiBitPerWord(FaultKind kind)
{
    return kind != FaultKind::Bit && kind != FaultKind::Column;
}

struct FitEntry
{
    double transient = 0; ///< FIT
    double permanent = 0; ///< FIT
    double total() const { return transient + permanent; }
};

/** Per-chip FIT rates; defaults are Table I. */
struct FitTable
{
    std::array<FitEntry, numFaultKinds> rates{{
        {14.2, 18.6}, // Bit
        {1.4, 0.3},   // Word
        {1.4, 5.6},   // Column
        {0.2, 8.2},   // Row
        {0.8, 10.0},  // Bank
        {0.3, 1.4},   // MultiBank
        {0.9, 2.8},   // MultiRank
    }};

    const FitEntry &
    entry(FaultKind kind) const
    {
        return rates[static_cast<unsigned>(kind)];
    }

    FitEntry &
    entry(FaultKind kind)
    {
        return rates[static_cast<unsigned>(kind)];
    }

    /** Sum of all FIT rates for one chip. */
    double
    totalFit() const
    {
        double sum = 0;
        for (const auto &e : rates)
            sum += e.total();
        return sum;
    }
};

} // namespace xed::faultsim

#endif // XED_FAULTSIM_FIT_RATES_HH
