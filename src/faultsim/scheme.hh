/**
 * @file
 * Correction-scheme evaluators for the reliability Monte-Carlo.
 *
 * Each scheme encodes, as a rule over the fault ranges present in one
 * DIMM, when the protection fails (uncorrectable, mis-corrected, or
 * silent error) -- the failure condition the paper's Section III uses.
 * See DESIGN.md Section 4 for the rule derivations.
 */

#ifndef XED_FAULTSIM_SCHEME_HH
#define XED_FAULTSIM_SCHEME_HH

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "faultsim/fault_model.hh"
#include "obs/forensics.hh"

namespace xed::faultsim
{

/** On-die ECC configuration shared by the schemes. */
struct OnDieOptions
{
    /** Chips are equipped with (72,64) on-die SECDED. */
    bool present = true;
    /** Birthtime scaling-fault rate per bit (0, 1e-6, 1e-5, 1e-4). */
    double scalingRate = 0;
    /**
     * Probability that a multi-bit error pattern aliases to a valid
     * on-die codeword and escapes detection (paper: 0.8%).
     */
    double detectionEscapeProb = 0.008;
};

/** A system failure observed by a scheme evaluator. */
struct SchemeFailure
{
    double timeHours = 0;
    /** Counter label, e.g. "multi-chip-data-loss", "due-word-fault". */
    const char *type = "";
    /** Forensics: was the failure silent (SDC) or detected (DUE)? */
    obs::FailureClass cls = obs::FailureClass::Due;
    /** Forensics: how the protection stack disposed of the error. */
    obs::DetectionOutcome outcome = obs::DetectionOutcome::None;
    /** Forensics: OR of 1 << FaultKind for each contributing fault. */
    std::uint8_t kindsMask = 0;
};

/** Bit in SchemeFailure::kindsMask for one contributing fault event. */
inline std::uint8_t
faultKindBit(const FaultEvent &e)
{
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(e.kind));
}

static_assert((1u << numFaultKinds) <=
                  obs::FailureAttribution::maxKindMasks,
              "kindsMask combinations must fit the attribution table");

/**
 * Reusable per-worker scratch for scheme evaluation. The evaluators
 * partition and filter fault events into these buffers; reusing one
 * scratch across evaluateDimm calls means the buffers grow once to
 * their high-water capacity and steady-state evaluation allocates
 * nothing. A scratch must not be shared between concurrent workers.
 */
struct EvalScratch
{
    std::vector<FaultEvent> group;   ///< rank-group partition buffer
    std::vector<FaultEvent> visible; ///< events reaching the DIMM code
    std::vector<FaultEvent> escaped; ///< detection-escaped word faults

    /**
     * Cached scaling-interaction probabilities. The helpers behind
     * every bernoulli draw (bitClassEscapeProb and friends) call
     * std::pow with arguments that are fixed for a whole run (the
     * scaling rate and the row width), so each worker computes the
     * four possible results once and replays the cached doubles. The
     * cache is keyed so a scratch reused across configurations
     * re-primes; replaying an identical double yields an identical
     * bernoulli draw, so caching cannot change any result.
     */
    struct ProbCache
    {
        bool primed = false;
        double scalingRate = 0; ///< key: OnDieOptions::scalingRate
        unsigned rowBits = 0;   ///< key: AddressLayout::rowBits
        double escapeBit = 0;
        double escapeColumn = 0;
        double secdedBit = 0;
        double secdedColumn = 0;
    };
    ProbCache prob;

    void
    reserve(std::size_t n)
    {
        group.reserve(n);
        visible.reserve(n);
        escaped.reserve(n);
    }
};

class Scheme
{
  public:
    virtual ~Scheme() = default;

    virtual std::string name() const = 0;

    /** DIMM organization this scheme expects. */
    virtual DimmShape dimmShape() const = 0;

    /**
     * Evaluate one DIMM's fault events; return the earliest failure if
     * the protection is defeated at any time. @p rng drives the
     * probabilistic on-die escape decisions; @p scratch provides the
     * reusable buffers (the hot path hands each worker its own).
     */
    virtual std::optional<SchemeFailure>
    evaluateDimm(std::span<const FaultEvent> events,
                 const AddressLayout &layout, Rng &rng,
                 EvalScratch &scratch) const = 0;

    /** Convenience overload with a throwaway scratch (tests, tools). */
    std::optional<SchemeFailure>
    evaluateDimm(std::span<const FaultEvent> events,
                 const AddressLayout &layout, Rng &rng) const
    {
        EvalScratch scratch;
        return evaluateDimm(events, layout, rng, scratch);
    }

    /** Brace-list convenience: evaluateDimm({ev1, ev2}, ...). */
    std::optional<SchemeFailure>
    evaluateDimm(std::initializer_list<FaultEvent> events,
                 const AddressLayout &layout, Rng &rng) const
    {
        return evaluateDimm(
            std::span<const FaultEvent>(events.begin(), events.size()),
            layout, rng);
    }
};

/** The protection configurations evaluated in the paper. */
enum class SchemeKind
{
    NonEcc, ///< 8-chip DIMM, no DIMM-level code (Fig. 1)
    Secded, ///< 9-chip ECC-DIMM, (72,64) SECDED (Fig. 1/7/8)
    Xed,    ///< 9-chip ECC-DIMM, XED (Fig. 7/8)
    /**
     * Chipkill as the paper evaluates it: one 18-chip codeword group
     * per access (16 data + 2 check symbols). Multi-rank faults land
     * one chip per group and stay correctable -- this is what
     * reproduces the paper's 43x (vs SECDED) and 4x (vs XED) ratios.
     */
    Chipkill,
    /**
     * Ablation: commodity-x8 Chipkill built by lockstepping the two
     * 9-chip ranks of an ECC-DIMM. The codeword then spans both ranks,
     * so a multi-rank fault defeats it -- an order of magnitude worse
     * than the 18-chip x4 arrangement. Not a paper figure; included to
     * quantify the lockstep penalty.
     */
    ChipkillX8Lockstep,
    /**
     * Double-Chipkill: 36 x4 chips, implemented (per the Figure 12
     * discussion) by ganging ranks of two *channels*, so a multi-rank
     * fault contributes only one chip per codeword group.
     */
    DoubleChipkill,
    XedChipkill, ///< XED on 18 chips in one group, 2-erasure
    /**
     * Commodity-x8 lockstep family used for Figures 9/10: codeword
     * groups are built from lockstepped 9-chip ECC-DIMM ranks, so
     * multi-rank faults land two chips *inside* a group. Single-
     * Chipkill loses them, while Double-Chipkill (4 lockstepped ranks,
     * 36 chips) and XED-on-Chipkill (2 ranks, 18 chips, two erasures)
     * absorb them -- reproducing the paper's ~10x (DCK vs SCK) and
     * "fewer chips" (XED+CK vs DCK) ratios.
     */
    DoubleChipkillLockstep,
    XedChipkillLockstep,
};

std::unique_ptr<Scheme> makeScheme(SchemeKind kind,
                                   const OnDieOptions &onDie);

const char *schemeKindName(SchemeKind kind);

} // namespace xed::faultsim

#endif // XED_FAULTSIM_SCHEME_HH
