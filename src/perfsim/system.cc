#include "perfsim/system.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "obs/trace.hh"

namespace xed::perfsim
{

RunResult
simulate(const Workload &workload, ProtectionMode mode,
         const PerfConfig &config)
{
    XED_TRACE_SPAN_ARG("perfsim.simulate", "perfsim", "memOpsPerCore",
                       config.memOpsPerCore);
    const ModeEffects fx = modeEffects(mode);
    MemorySystem memory(config.timing, fx, config.seed ^ 0xBEEF);

    TraceGen::AddressSpace space;
    space.channels = fx.effectiveChannels;
    space.ranks = fx.effectiveRanks;

    std::vector<std::unique_ptr<Core>> cores;
    for (unsigned c = 0; c < config.cores; ++c) {
        cores.push_back(std::make_unique<Core>(
            c, workload, config.coreParams, space, config.memOpsPerCore,
            config.seed + 1000003ull * (c + 1),
            config.timing.cpuCyclesPerMemCycle));
    }

    std::uint64_t cycle = 0;
    std::uint64_t lastFinish = 0;
    for (; cycle < config.maxCycles; ++cycle) {
        memory.tick(cycle);
        bool allDone = true;
        for (auto &core : cores) {
            core->tick(cycle, memory);
            allDone &= core->finished();
        }
        if (allDone && memory.drained()) {
            for (const auto &core : cores)
                lastFinish = std::max(lastFinish, core->finishCycle());
            break;
        }
    }
    if (lastFinish == 0)
        lastFinish = cycle;

    RunResult result;
    result.mode = fx.label;
    result.workload = workload.name;
    result.cycles = std::max(lastFinish, cycle);
    result.seconds =
        static_cast<double>(result.cycles) * config.timing.tCkSeconds;
    result.stats = memory.stats();

    PowerConfig pc;
    pc.timing = config.timing;
    pc.currents = config.currents;
    pc.ioEnergyScale = fx.ioEnergyScale;
    result.power = computeMemoryPower(result.stats, result.cycles, pc);
    return result;
}

NormalizedResult
normalizedAgainstBaseline(const Workload &workload, ProtectionMode mode,
                          const PerfConfig &config)
{
    const auto baseline =
        simulate(workload, ProtectionMode::SecdedBaseline, config);
    const auto run = simulate(workload, mode, config);
    NormalizedResult out;
    out.execTime = static_cast<double>(run.cycles) /
                   static_cast<double>(baseline.cycles);
    out.memoryPower =
        run.memoryPowerWatts() / baseline.memoryPowerWatts();
    return out;
}

} // namespace xed::perfsim
