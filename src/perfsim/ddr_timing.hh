/**
 * @file
 * DDR3-1600 timing and current parameters for the USIMM-style memory
 * system simulator (Table V: 800MHz bus, 3.2GHz cores, 4 channels,
 * 2 ranks/channel, 8 banks/rank, 32K rows, 128 lines/row).
 *
 * All timing values are in memory-bus cycles (tCK = 1.25ns); the CPU
 * runs 4 cycles per memory cycle.
 */

#ifndef XED_PERFSIM_DDR_TIMING_HH
#define XED_PERFSIM_DDR_TIMING_HH

#include <cstdint>

namespace xed::perfsim
{

struct TimingParams
{
    // DDR3-1600 (11-11-11) in memory cycles.
    unsigned tRCD = 11;  ///< activate to CAS
    unsigned tRP = 11;   ///< precharge
    unsigned tCL = 11;   ///< CAS (read) latency
    unsigned tCWL = 8;   ///< CAS write latency
    unsigned tRAS = 28;  ///< activate to precharge
    unsigned tRC = 39;   ///< activate to activate, same bank
    unsigned tRRD = 5;   ///< activate to activate, same rank
    unsigned tFAW = 24;  ///< four-activate window
    unsigned tWR = 12;   ///< write recovery
    unsigned tRTP = 6;   ///< read to precharge
    unsigned tCCD = 4;   ///< CAS to CAS, same rank
    unsigned tBurst = 4; ///< BL8 on a DDR bus: 4 bus cycles
    unsigned tRFC = 128; ///< refresh cycle time (2Gb: 160ns)
    unsigned tREFI = 6240; ///< refresh interval (7.8us)

    double tCkSeconds = 1.25e-9; ///< 800 MHz bus
    unsigned cpuCyclesPerMemCycle = 4; ///< 3.2 GHz cores
};

struct CoreParams
{
    unsigned robSize = 160;   ///< Table V
    unsigned retireWidth = 4; ///< Table V (also fetch width)
    unsigned maxMlp = 16;     ///< upper bound on outstanding reads
    /**
     * Sustained IPC on non-memory work. The 4-wide machine of Table V
     * peaks at 4, but dependence chains hold the memory-intensive
     * workloads of Section X near 1 between misses; this is the knob
     * that sets absolute memory intensity.
     */
    double nonMemIpc = 1.0;
};

/**
 * DDR3 current parameters in the spirit of Micron TN-41-01 (2Gb x8).
 * The x4 devices of Chipkill/Double-Chipkill systems are modeled with
 * half the per-chip currents so that a rank of 18 x4 chips matches a
 * rank of 9 x8 chips -- which keeps the power normalization against the
 * ECC-DIMM baseline meaningful.
 */
struct PowerParams
{
    double idd0 = 0.095;  ///< A, activate-precharge average
    double idd2n = 0.042; ///< A, precharge standby
    double idd3n = 0.045; ///< A, active standby
    double idd4r = 0.180; ///< A, read burst
    double idd4w = 0.185; ///< A, write burst
    double idd5 = 0.215;  ///< A, refresh burst
    double vdd = 1.5;     ///< V

    /**
     * On-Die ECC adds 12.5% more cells per die; the paper raises the
     * background, refresh, activate and precharge currents by 12.5%
     * (Section X).
     */
    double onDieEccOverhead = 0.125;
};

} // namespace xed::perfsim

#endif // XED_PERFSIM_DDR_TIMING_HH
