#include "perfsim/core.hh"

#include <algorithm>
#include <cmath>

namespace xed::perfsim
{

Core::Core(unsigned id, const Workload &workload, const CoreParams &params,
           const TraceGen::AddressSpace &space, std::uint64_t memOpBudget,
           std::uint64_t seed, unsigned cpuCyclesPerMemCycle)
    : id_(id), workload_(workload), params_(params),
      gen_(workload, space, seed), memOpBudget_(memOpBudget),
      cpuPerMem_(cpuCyclesPerMemCycle),
      window_(std::min(params.maxMlp, std::max(1u, workload.mlp)))
{
}

void
Core::tick(std::uint64_t now, MemorySystem &memory)
{
    if (finished_)
        return;
    const double cpuNow = static_cast<double>(now * cpuPerMem_);

    // Retire completed reads in program order (ROB head semantics).
    while (!outstanding_.empty() && outstanding_.front()->done() &&
           outstanding_.front()->doneCycle <=
               static_cast<std::int64_t>(now)) {
        outstanding_.pop_front();
    }

    // Issue as much of the in-order stream as this cycle allows.
    for (unsigned issued = 0; issued < params_.retireWidth; ++issued) {
        if (!hasPending_) {
            if (opsIssued_ >= memOpBudget_)
                break;
            pending_ = gen_.next();
            // The preceding non-memory instructions execute at the
            // sustained non-memory IPC.
            computeReadyCpu_ =
                std::max(computeReadyCpu_, cpuNow) +
                static_cast<double>(pending_.gapInstrs) /
                    params_.nonMemIpc;
            hasPending_ = true;
        }
        if (computeReadyCpu_ > cpuNow + cpuPerMem_ - 1)
            break; // still chewing through compute
        if (pending_.isWrite) {
            if (!memory.canAcceptWrite(pending_.addr.channel))
                break; // write buffer back-pressure
            memory.enqueueWrite(pending_.addr);
        } else {
            if (outstanding_.size() >= window_)
                break; // ROB / MLP limit
            if (!memory.canAcceptRead(pending_.addr.channel))
                break;
            auto req = std::make_unique<MemRequest>();
            req->addr = pending_.addr;
            req->core = id_;
            req->arrivalCycle = now;
            memory.enqueueRead(req.get());
            outstanding_.push_back(std::move(req));
        }
        hasPending_ = false;
        ++opsIssued_;
    }

    if (opsIssued_ >= memOpBudget_ && !hasPending_ &&
        outstanding_.empty()) {
        finished_ = true;
        finishCycle_ = std::max(
            now, static_cast<std::uint64_t>(
                     std::ceil(computeReadyCpu_ / cpuPerMem_)));
    }
}

} // namespace xed::perfsim
