/**
 * @file
 * ROB-limited core model (USIMM-style front end, Table V: 160-entry
 * ROB, 4-wide retire, 3.2GHz).
 *
 * Each core consumes its trace in program order. Non-memory
 * instructions retire at 4 per CPU cycle; reads are issued to the
 * memory system and the core stalls when its achievable memory-level
 * parallelism (bounded by the ROB and by the workload's dependence
 * structure) is exhausted; writes are posted through the write buffer
 * and never stall retirement.
 */

#ifndef XED_PERFSIM_CORE_HH
#define XED_PERFSIM_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "perfsim/ddr_timing.hh"
#include "perfsim/memsys.hh"
#include "perfsim/tracegen.hh"

namespace xed::perfsim
{

class Core
{
  public:
    Core(unsigned id, const Workload &workload, const CoreParams &params,
         const TraceGen::AddressSpace &space, std::uint64_t memOpBudget,
         std::uint64_t seed, unsigned cpuCyclesPerMemCycle);

    /** Advance one memory cycle. */
    void tick(std::uint64_t now, MemorySystem &memory);

    bool finished() const { return finished_; }
    std::uint64_t finishCycle() const { return finishCycle_; }
    std::uint64_t opsIssued() const { return opsIssued_; }

  private:
    unsigned id_;
    Workload workload_;
    CoreParams params_;
    TraceGen gen_;
    std::uint64_t memOpBudget_;
    unsigned cpuPerMem_;
    /** Outstanding-read limit: min(workload MLP, core cap). */
    unsigned window_;

    std::deque<std::unique_ptr<MemRequest>> outstanding_;
    MemOp pending_{};
    bool hasPending_ = false;
    double computeReadyCpu_ = 0; ///< CPU cycle the next op is ready
    std::uint64_t opsIssued_ = 0;
    bool finished_ = false;
    std::uint64_t finishCycle_ = 0;
};

} // namespace xed::perfsim

#endif // XED_PERFSIM_CORE_HH
