#include "perfsim/protection.hh"

namespace xed::perfsim
{

ModeEffects
modeEffects(ProtectionMode mode)
{
    ModeEffects fx;
    switch (mode) {
      case ProtectionMode::SecdedBaseline:
        fx.label = "ECC-DIMM (SECDED)";
        break;
      case ProtectionMode::Xed:
        // Identical activation behaviour to the baseline: one rank, no
        // overfetch. Serial-mode re-reads happen once per ~200K
        // accesses (Table III) and are negligible (Section XI-A).
        fx.label = "XED (9 chips)";
        break;
      case ProtectionMode::Chipkill:
        // Two x8 ranks lockstepped: rank parallelism halves and every
        // access transfers two cache lines (100% overfetch).
        fx.label = "Chipkill (18 chips)";
        fx.effectiveRanks = 1;
        fx.ranksPerAccess = 2;
        fx.activateRankEquivalents = 1.0;
        fx.readBurstCycles = 8;
        fx.writeBurstCycles = 8;
        break;
      case ProtectionMode::XedChipkill:
        // Section IX: same 18-chip activation as Chipkill, so the same
        // performance shape -- but Double-Chipkill-level reliability.
        fx.label = "XED + Single Chipkill (18 chips)";
        fx.effectiveRanks = 1;
        fx.ranksPerAccess = 2;
        fx.activateRankEquivalents = 1.0;
        fx.readBurstCycles = 8;
        fx.writeBurstCycles = 8;
        break;
      case ProtectionMode::DoubleChipkill:
        // 36 chips: two ranks on each of two ganged channels.
        fx.label = "Double-Chipkill (36 chips)";
        fx.effectiveChannels = 2;
        fx.effectiveRanks = 1;
        fx.ranksPerAccess = 4;
        fx.activateRankEquivalents = 2.0;
        fx.readBurstCycles = 8;
        fx.writeBurstCycles = 8;
        fx.gangedBuses = 2;
        break;
      case ProtectionMode::ChipkillExtraBurst:
        // Expose the on-die ECC by stretching every burst from 8 to 10
        // beats (+25% bus occupancy), Section XI-C.
        fx.label = "Chipkill + extra burst";
        fx.effectiveRanks = 1;
        fx.ranksPerAccess = 2;
        fx.activateRankEquivalents = 1.0;
        fx.readBurstCycles = 10;
        fx.writeBurstCycles = 10;
        fx.ioEnergyScale = 1.5;
        break;
      case ProtectionMode::DoubleChipkillExtraBurst:
        fx.label = "Double-Chipkill + extra burst";
        fx.effectiveChannels = 2;
        fx.effectiveRanks = 1;
        fx.ranksPerAccess = 4;
        fx.activateRankEquivalents = 2.0;
        fx.readBurstCycles = 10;
        fx.writeBurstCycles = 10;
        fx.ioEnergyScale = 1.5;
        fx.gangedBuses = 2;
        break;
      case ProtectionMode::ChipkillExtraTransaction:
        // Expose the on-die ECC with a second CAS per access.
        fx.label = "Chipkill + extra transaction";
        fx.effectiveRanks = 1;
        fx.ranksPerAccess = 2;
        fx.activateRankEquivalents = 1.0;
        fx.readBurstCycles = 12;
        fx.writeBurstCycles = 12;
        fx.ioEnergyScale = 2.0;
        break;
      case ProtectionMode::DoubleChipkillExtraTransaction:
        fx.label = "Double-Chipkill + extra transaction";
        fx.effectiveChannels = 2;
        fx.effectiveRanks = 1;
        fx.ranksPerAccess = 4;
        fx.activateRankEquivalents = 2.0;
        fx.readBurstCycles = 12;
        fx.writeBurstCycles = 12;
        fx.ioEnergyScale = 2.0;
        fx.gangedBuses = 2;
        break;
      case ProtectionMode::LotEcc:
        // LOT-ECC keeps single-rank accesses but updates its second
        // ECC tier with additional writes; fine-grained T2EC updates
        // coalesce heavily in the write queue (Udipi et al., ISCA'12),
        // leaving ~10% extra write traffic -- calibrated to the 6.6%
        // slowdown over XED the paper reports (Figure 14).
        fx.label = "LOT-ECC (write-coalescing)";
        fx.extraWriteProb = 0.10;
        break;
    }
    return fx;
}

const char *
protectionModeName(ProtectionMode mode)
{
    switch (mode) {
      case ProtectionMode::SecdedBaseline: return "secded";
      case ProtectionMode::Xed: return "xed";
      case ProtectionMode::Chipkill: return "chipkill";
      case ProtectionMode::XedChipkill: return "xed-chipkill";
      case ProtectionMode::DoubleChipkill: return "double-chipkill";
      case ProtectionMode::ChipkillExtraBurst: return "ck-extra-burst";
      case ProtectionMode::DoubleChipkillExtraBurst:
        return "dck-extra-burst";
      case ProtectionMode::ChipkillExtraTransaction: return "ck-extra-txn";
      case ProtectionMode::DoubleChipkillExtraTransaction:
        return "dck-extra-txn";
      case ProtectionMode::LotEcc: return "lot-ecc";
    }
    return "?";
}

} // namespace xed::perfsim
