/**
 * @file
 * Memory request representation shared by the cores, the trace
 * generator and the memory controller.
 */

#ifndef XED_PERFSIM_REQUEST_HH
#define XED_PERFSIM_REQUEST_HH

#include <cstdint>

namespace xed::perfsim
{

/** Decoded line address. */
struct Address
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned col = 0;
};

/** One memory operation from a core's trace. */
struct MemOp
{
    /** Non-memory instructions preceding this operation. */
    unsigned gapInstrs = 0;
    bool isWrite = false;
    Address addr{};
};

/** An in-flight read request. */
struct MemRequest
{
    Address addr{};
    unsigned core = 0;
    std::uint64_t arrivalCycle = 0;
    /** Completion cycle; negative while outstanding. */
    std::int64_t doneCycle = -1;

    bool done() const { return doneCycle >= 0; }
};

} // namespace xed::perfsim

#endif // XED_PERFSIM_REQUEST_HH
