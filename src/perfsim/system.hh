/**
 * @file
 * Top-level performance simulation: 8 cores in rate mode over the
 * DDR3 memory system (Table V), one run per (workload, protection
 * mode). Reports execution time and memory power, the quantities
 * Figures 11-14 plot normalized to the ECC-DIMM SECDED baseline.
 */

#ifndef XED_PERFSIM_SYSTEM_HH
#define XED_PERFSIM_SYSTEM_HH

#include <cstdint>
#include <string>

#include "perfsim/core.hh"
#include "perfsim/power.hh"
#include "perfsim/protection.hh"
#include "perfsim/workloads.hh"

namespace xed::perfsim
{

struct PerfConfig
{
    unsigned cores = 8; ///< Table V
    /** Memory operations simulated per core (trace length). */
    std::uint64_t memOpsPerCore = 30000;
    TimingParams timing{};
    CoreParams coreParams{};
    PowerParams currents{};
    std::uint64_t seed = 0x5EED;
    /** Hard cap to guarantee termination. */
    std::uint64_t maxCycles = 500000000;
};

struct RunResult
{
    std::string mode;
    std::string workload;
    std::uint64_t cycles = 0; ///< memory cycles to finish all cores
    double seconds = 0;
    MemStats stats{};
    PowerBreakdown power{};

    double memoryPowerWatts() const { return power.total(); }
};

/** Simulate one workload under one protection mode. */
RunResult simulate(const Workload &workload, ProtectionMode mode,
                   const PerfConfig &config = {});

/** Convenience: exec-time and power of @p mode normalized to SECDED. */
struct NormalizedResult
{
    double execTime = 1.0;
    double memoryPower = 1.0;
};

NormalizedResult normalizedAgainstBaseline(const Workload &workload,
                                           ProtectionMode mode,
                                           const PerfConfig &config = {});

} // namespace xed::perfsim

#endif // XED_PERFSIM_SYSTEM_HH
