#include "perfsim/tracegen.hh"

#include <algorithm>
#include <cmath>

namespace xed::perfsim
{

TraceGen::TraceGen(const Workload &workload, const AddressSpace &space,
                   std::uint64_t seed)
    : workload_(workload), space_(space), rng_(seed)
{
    current_.channel = static_cast<unsigned>(rng_.below(space_.channels));
    current_.rank = static_cast<unsigned>(rng_.below(space_.ranks));
    current_.bank = static_cast<unsigned>(rng_.below(space_.banks));
    current_.row = static_cast<unsigned>(rng_.below(space_.rows));
    current_.col = static_cast<unsigned>(rng_.below(space_.cols));
}

MemOp
TraceGen::next()
{
    MemOp op;
    // Memory operations per kilo-instruction: reads (MPKI) plus the
    // proportional writeback traffic.
    const double opsPerKiloInstr =
        workload_.mpki / (1.0 - workload_.writeFraction);
    const double meanGap = 1000.0 / opsPerKiloInstr;
    op.gapInstrs = static_cast<unsigned>(
        std::min(1e6, rng_.exponential(1.0 / meanGap)));
    op.isWrite = rng_.bernoulli(workload_.writeFraction);

    if (rng_.bernoulli(workload_.rowHitRate)) {
        // Stay in the open row: next line of the same row.
        current_.col = (current_.col + 1) % space_.cols;
    } else {
        current_.channel =
            static_cast<unsigned>(rng_.below(space_.channels));
        current_.rank = static_cast<unsigned>(rng_.below(space_.ranks));
        current_.bank = static_cast<unsigned>(rng_.below(space_.banks));
        current_.row = static_cast<unsigned>(rng_.below(space_.rows));
        current_.col = static_cast<unsigned>(rng_.below(space_.cols));
    }
    op.addr = current_;
    return op;
}

} // namespace xed::perfsim
