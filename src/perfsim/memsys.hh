/**
 * @file
 * USIMM-style DDR3 memory system: per-channel FR-FCFS scheduling over
 * per-bank state machines with JEDEC timing (tRCD/tRP/tCL/tRAS/tRRD/
 * tFAW/tWR/tRFC/tREFI), a write buffer with watermark-based draining,
 * and periodic refresh.
 *
 * Protection modes shape the system through ModeEffects: rank lockstep
 * reduces the number of independent ranks, channel ganging halves the
 * independent channels, extra-burst/extra-transaction modes stretch the
 * data-bus occupancy, and LOT-ECC spawns additional parity writes.
 */

#ifndef XED_PERFSIM_MEMSYS_HH
#define XED_PERFSIM_MEMSYS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "perfsim/ddr_timing.hh"
#include "perfsim/protection.hh"
#include "perfsim/request.hh"

namespace xed::perfsim
{

struct MemStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    /** Activate events in x8-rank-equivalents (power accounting). */
    double rankActivates = 0;
    /** Bank-activate commands issued (scheduling statistic). */
    std::uint64_t bankActivates = 0;
    /** Data-bus cycles consumed by reads / writes (per physical bus). */
    std::uint64_t readBusCycles = 0;
    std::uint64_t writeBusCycles = 0;
    /** Per-rank refresh events. */
    std::uint64_t refreshes = 0;
    /** Extra writes injected by LOT-ECC parity updates. */
    std::uint64_t extraWrites = 0;
};

class MemorySystem
{
  public:
    MemorySystem(const TimingParams &timing, const ModeEffects &mode,
                 std::uint64_t seed = 0x9E);

    unsigned channels() const { return mode_.effectiveChannels; }

    bool canAcceptRead(unsigned channel) const;
    bool canAcceptWrite(unsigned channel) const;

    /** Hand a read to the controller; completion lands in req. */
    void enqueueRead(MemRequest *req);
    /** Posted write (no completion notification needed). */
    void enqueueWrite(const Address &addr);

    /** Advance one memory cycle: refresh + issue per channel. */
    void tick(std::uint64_t now);

    /** True when every queue is empty. */
    bool drained() const;

    const MemStats &stats() const { return stats_; }
    const ModeEffects &mode() const { return mode_; }

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        /** Earliest cycle the next CAS may issue (tCCD-limited). */
        std::uint64_t nextCasAt = 0;
        /** Earliest cycle the row may be precharged (tRTP / tWR). */
        std::uint64_t prechargeableAt = 0;
    };

    struct RankState
    {
        /** tFAW history; negative sentinel = no prior activate. */
        std::int64_t actWindow[4] = {-(1 << 20), -(1 << 20), -(1 << 20),
                                     -(1 << 20)};
        unsigned actPtr = 0;
        std::int64_t lastActivate = -(1 << 20);
        std::uint64_t refreshUntil = 0;
        std::uint64_t nextRefreshAt = 0;
    };

    struct PendingWrite
    {
        Address addr;
        std::uint64_t arrival = 0;
    };

    struct Channel
    {
        std::deque<MemRequest *> readQ;
        std::deque<PendingWrite> writeQ;
        std::vector<Bank> banks;  ///< ranks x banksPerRank
        std::vector<RankState> ranks;
        std::uint64_t busFreeAt = 0;
        bool draining = false;
    };

    Bank &bankOf(Channel &ch, const Address &a);
    void refreshTick(Channel &ch, std::uint64_t now);
    /** Issue one request on the channel if possible. */
    void issueTick(Channel &ch, std::uint64_t now);
    /** Reserve timing for an access; returns data-done cycle. */
    std::uint64_t serve(Channel &ch, const Address &addr, bool isWrite,
                        std::uint64_t now);

    static constexpr unsigned banksPerRank = 8;
    static constexpr std::size_t readQueueCap = 32;
    static constexpr std::size_t writeQueueCap = 64;
    static constexpr std::size_t drainHigh = 40;
    static constexpr std::size_t drainLow = 16;

    TimingParams timing_;
    ModeEffects mode_;
    Rng rng_;
    std::vector<Channel> channels_;
    MemStats stats_;
};

} // namespace xed::perfsim

#endif // XED_PERFSIM_MEMSYS_HH
