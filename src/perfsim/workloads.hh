/**
 * @file
 * The evaluation workloads (Section X): SPEC CPU2006, PARSEC, BioBench
 * and five commercial applications, run in 8-core rate mode. The paper
 * selected benchmarks with > 1 LLC miss per 1000 instructions.
 *
 * Pin traces are not redistributable, so each workload is characterized
 * by the statistics that determine memory-system behaviour -- LLC
 * misses per kilo-instruction, row-buffer locality, write fraction and
 * achievable memory-level parallelism -- taken from published
 * characterizations of these suites. The synthetic trace generator
 * reproduces those statistics (see DESIGN.md, substitution table).
 */

#ifndef XED_PERFSIM_WORKLOADS_HH
#define XED_PERFSIM_WORKLOADS_HH

#include <string>
#include <vector>

namespace xed::perfsim
{

enum class Suite
{
    Spec2006,
    Parsec,
    BioBench,
    Commercial,
};

const char *suiteName(Suite suite);

struct Workload
{
    std::string name;
    Suite suite;
    /** LLC misses (memory reads) per 1000 instructions. */
    double mpki;
    /** Row-buffer hit rate of the access stream. */
    double rowHitRate;
    /** Fraction of memory operations that are writebacks. */
    double writeFraction;
    /**
     * Achievable memory-level parallelism (outstanding reads). Low for
     * pointer-chasing codes (mcf), high for streaming codes
     * (libquantum, lbm).
     */
    unsigned mlp;
};

/** The paper's 28 workloads (Figure 11 x-axis). */
const std::vector<Workload> &paperWorkloads();

/** Lookup by name; throws std::out_of_range if unknown. */
const Workload &workloadByName(const std::string &name);

} // namespace xed::perfsim

#endif // XED_PERFSIM_WORKLOADS_HH
