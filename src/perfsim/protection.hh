/**
 * @file
 * How each protection scheme shapes the memory system's behaviour
 * (Sections X-XI of the paper). A scheme changes *only* how many
 * ranks/channels an access occupies, how long bursts are, whether extra
 * transactions or writes are generated, and how many chips burn power.
 */

#ifndef XED_PERFSIM_PROTECTION_HH
#define XED_PERFSIM_PROTECTION_HH

#include <string>

namespace xed::perfsim
{

enum class ProtectionMode
{
    /** 9-chip ECC-DIMM with SECDED: the normalization baseline. */
    SecdedBaseline,
    /** XED: identical access behaviour to the baseline (serial-mode
     *  re-reads are rare enough to be negligible, Section XI-A). */
    Xed,
    /** Chipkill: 18 chips via two lockstepped ranks. */
    Chipkill,
    /** XED on top of Chipkill (18 chips, two ranks): Double-Chipkill
     *  reliability at Chipkill cost. */
    XedChipkill,
    /** Double-Chipkill: 36 chips via two ranks on two ganged channels. */
    DoubleChipkill,
    /** Expose On-Die ECC with 2 extra bursts (BL8 -> BL10), Fig. 13. */
    ChipkillExtraBurst,
    DoubleChipkillExtraBurst,
    /** Expose On-Die ECC with an additional transaction, Fig. 13. */
    ChipkillExtraTransaction,
    DoubleChipkillExtraTransaction,
    /** LOT-ECC with write coalescing (Fig. 14). */
    LotEcc,
};

/** The knobs a mode turns. */
struct ModeEffects
{
    std::string label;
    /** Independent channels (4, or 2 when channel pairs are ganged). */
    unsigned effectiveChannels = 4;
    /** Independent ranks per channel (2, or 1 under rank lockstep). */
    unsigned effectiveRanks = 2;
    /** Physical ranks activated per access (refresh accounting). */
    unsigned ranksPerAccess = 1;
    /**
     * Activate/precharge energy per access in x8-rank equivalents.
     * 18 x4 chips draw about the activate current of a 9-chip x8 rank
     * and 36 x4 chips about twice that -- the x4-based power accounting
     * of Section X under which Chipkill's longer execution *lowers*
     * average memory power (Figure 12).
     */
    double activateRankEquivalents = 1.0;
    /**
     * Data-bus cycles per read / write burst on the (possibly ganged)
     * channel. Baseline BL8 = 4; x8 rank-lockstep overfetches a second
     * cache line (100% overfetch, Section II-D2) = 8; +2 bursts
     * (BL8 -> BL10 per line) adds 25%; an extra ECC transaction adds
     * another CAS+burst.
     */
    unsigned readBurstCycles = 4;
    unsigned writeBurstCycles = 4;
    /** Physical data buses driven per access (2 when channels gang). */
    unsigned gangedBuses = 1;
    /** Probability a write spawns an extra (parity-update) write. */
    double extraWriteProb = 0.0;
    /**
     * IO (burst) energy per access relative to one 64B line: the
     * extra-burst and extra-transaction alternatives of Section XI-C
     * move real additional bits, costing power as well as time.
     */
    double ioEnergyScale = 1.0;
};

ModeEffects modeEffects(ProtectionMode mode);

const char *protectionModeName(ProtectionMode mode);

} // namespace xed::perfsim

#endif // XED_PERFSIM_PROTECTION_HH
