/**
 * @file
 * Synthetic trace generator calibrated per workload.
 *
 * Emits a stream of memory operations whose statistics match the
 * workload descriptor: mean gap of 1000*(1-wf)/MPKI instructions
 * between operations (exponentially distributed), writeFraction of
 * operations are writebacks, and the address stream hits the open row
 * with the configured probability (otherwise it jumps to a uniformly
 * random channel/rank/bank/row).
 */

#ifndef XED_PERFSIM_TRACEGEN_HH
#define XED_PERFSIM_TRACEGEN_HH

#include "common/rng.hh"
#include "perfsim/request.hh"
#include "perfsim/workloads.hh"

namespace xed::perfsim
{

class TraceGen
{
  public:
    struct AddressSpace
    {
        unsigned channels = 4;
        unsigned ranks = 2;
        unsigned banks = 8;
        unsigned rows = 32768;
        unsigned cols = 128;
    };

    TraceGen(const Workload &workload, const AddressSpace &space,
             std::uint64_t seed);

    /** Next memory operation of this core's trace. */
    MemOp next();

  private:
    Workload workload_;
    AddressSpace space_;
    Rng rng_;
    Address current_{};
};

} // namespace xed::perfsim

#endif // XED_PERFSIM_TRACEGEN_HH
