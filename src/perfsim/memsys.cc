#include "perfsim/memsys.hh"

#include <algorithm>
#include <cassert>

namespace xed::perfsim
{

MemorySystem::MemorySystem(const TimingParams &timing,
                           const ModeEffects &mode, std::uint64_t seed)
    : timing_(timing), mode_(mode), rng_(seed)
{
    channels_.resize(mode_.effectiveChannels);
    for (auto &ch : channels_) {
        ch.banks.resize(mode_.effectiveRanks * banksPerRank);
        ch.ranks.resize(mode_.effectiveRanks);
        // Stagger refresh across ranks to avoid artificial alignment.
        for (unsigned r = 0; r < mode_.effectiveRanks; ++r)
            ch.ranks[r].nextRefreshAt =
                (r + 1) * timing_.tREFI / (mode_.effectiveRanks + 1);
    }
}

MemorySystem::Bank &
MemorySystem::bankOf(Channel &ch, const Address &a)
{
    return ch.banks[a.rank * banksPerRank + a.bank];
}

bool
MemorySystem::canAcceptRead(unsigned channel) const
{
    return channels_[channel].readQ.size() < readQueueCap;
}

bool
MemorySystem::canAcceptWrite(unsigned channel) const
{
    return channels_[channel].writeQ.size() < writeQueueCap;
}

void
MemorySystem::enqueueRead(MemRequest *req)
{
    assert(req->addr.channel < channels_.size());
    channels_[req->addr.channel].readQ.push_back(req);
}

void
MemorySystem::enqueueWrite(const Address &addr)
{
    auto &ch = channels_[addr.channel];
    ch.writeQ.push_back({addr, 0});
    if (mode_.extraWriteProb > 0 &&
        rng_.bernoulli(mode_.extraWriteProb)) {
        // LOT-ECC second-tier parity update: a write to a different row
        // of the same bank (the T2EC region).
        Address parity = addr;
        parity.row = (addr.row ^ 0x5555u) % 32768u;
        if (ch.writeQ.size() < writeQueueCap)
            ch.writeQ.push_back({parity, 0});
        ++stats_.extraWrites;
    }
}

void
MemorySystem::refreshTick(Channel &ch, std::uint64_t now)
{
    for (unsigned r = 0; r < ch.ranks.size(); ++r) {
        auto &rank = ch.ranks[r];
        if (now < rank.nextRefreshAt)
            continue;
        rank.refreshUntil = now + timing_.tRFC;
        rank.nextRefreshAt += timing_.tREFI;
        stats_.refreshes += mode_.ranksPerAccess;
        for (unsigned b = 0; b < banksPerRank; ++b) {
            auto &bank = ch.banks[r * banksPerRank + b];
            bank.openRow = -1; // refresh closes all rows
            bank.nextCasAt = std::max<std::uint64_t>(bank.nextCasAt,
                                                     rank.refreshUntil);
            bank.prechargeableAt = std::max<std::uint64_t>(
                bank.prechargeableAt, rank.refreshUntil);
        }
    }
}

std::uint64_t
MemorySystem::serve(Channel &ch, const Address &addr, bool isWrite,
                    std::uint64_t now)
{
    auto &bank = bankOf(ch, addr);
    auto &rank = ch.ranks[addr.rank];
    const bool hit = bank.openRow == static_cast<std::int64_t>(addr.row);

    std::uint64_t cas;
    if (!hit) {
        std::uint64_t start =
            std::max({now, bank.prechargeableAt, rank.refreshUntil});
        if (bank.openRow >= 0)
            start += timing_.tRP; // precharge the conflicting row
        const std::uint64_t act = static_cast<std::uint64_t>(std::max(
            {static_cast<std::int64_t>(start),
             rank.lastActivate + timing_.tRRD,
             rank.actWindow[rank.actPtr] + timing_.tFAW}));
        rank.actWindow[rank.actPtr] = static_cast<std::int64_t>(act);
        rank.actPtr = (rank.actPtr + 1) % 4;
        rank.lastActivate = static_cast<std::int64_t>(act);
        stats_.rankActivates += mode_.activateRankEquivalents;
        ++stats_.bankActivates;
        bank.openRow = addr.row;
        cas = act + timing_.tRCD;
    } else {
        cas = std::max({now, bank.nextCasAt, rank.refreshUntil});
        ++stats_.rowHits;
    }

    const unsigned casLatency = isWrite ? timing_.tCWL : timing_.tCL;
    const unsigned burst =
        isWrite ? mode_.writeBurstCycles : mode_.readBurstCycles;
    std::uint64_t dataStart = std::max(cas + casLatency, ch.busFreeAt);
    ch.busFreeAt = dataStart + burst;
    const std::uint64_t dataDone = dataStart + burst;

    bank.nextCasAt = cas + std::max(timing_.tCCD, burst);
    bank.prechargeableAt =
        isWrite ? dataDone + timing_.tWR : cas + timing_.tRTP;
    if (isWrite) {
        ++stats_.writes;
        stats_.writeBusCycles += burst * mode_.gangedBuses;
    } else {
        ++stats_.reads;
        stats_.readBusCycles += burst * mode_.gangedBuses;
    }
    return dataDone;
}

void
MemorySystem::issueTick(Channel &ch, std::uint64_t now)
{
    // Write-drain hysteresis.
    if (ch.writeQ.size() >= drainHigh)
        ch.draining = true;
    else if (ch.writeQ.size() <= drainLow)
        ch.draining = false;

    const bool doWrites =
        ch.draining || (ch.readQ.empty() && !ch.writeQ.empty());

    if (doWrites && !ch.writeQ.empty()) {
        // FR-FCFS over the write queue: prefer a row hit that can
        // start now, else the oldest request.
        std::size_t pick = 0;
        bool found = false;
        for (std::size_t i = 0; i < ch.writeQ.size(); ++i) {
            const auto &a = ch.writeQ[i].addr;
            const auto &bank = ch.banks[a.rank * banksPerRank + a.bank];
            if (bank.openRow == static_cast<std::int64_t>(a.row) &&
                bank.nextCasAt <= now) {
                pick = i;
                found = true;
                break;
            }
        }
        if (!found)
            pick = 0;
        serve(ch, ch.writeQ[pick].addr, true, now);
        ch.writeQ.erase(ch.writeQ.begin() +
                        static_cast<std::ptrdiff_t>(pick));
        return;
    }

    if (ch.readQ.empty())
        return;
    std::size_t pick = 0;
    bool found = false;
    for (std::size_t i = 0; i < ch.readQ.size(); ++i) {
        const auto &a = ch.readQ[i]->addr;
        const auto &bank = ch.banks[a.rank * banksPerRank + a.bank];
        if (bank.openRow == static_cast<std::int64_t>(a.row) &&
            bank.nextCasAt <= now) {
            pick = i;
            found = true;
            break;
        }
    }
    if (!found) {
        // Oldest-first among requests whose bank is ready; fall back to
        // the oldest overall so the queue cannot deadlock.
        for (std::size_t i = 0; i < ch.readQ.size(); ++i) {
            const auto &a = ch.readQ[i]->addr;
            const auto &bank = ch.banks[a.rank * banksPerRank + a.bank];
            if (bank.prechargeableAt <= now) {
                pick = i;
                found = true;
                break;
            }
        }
    }
    if (!found)
        return; // every bank is busy this cycle
    MemRequest *req = ch.readQ[pick];
    ch.readQ.erase(ch.readQ.begin() + static_cast<std::ptrdiff_t>(pick));
    req->doneCycle =
        static_cast<std::int64_t>(serve(ch, req->addr, false, now));
}

void
MemorySystem::tick(std::uint64_t now)
{
    for (auto &ch : channels_) {
        refreshTick(ch, now);
        issueTick(ch, now);
    }
}

bool
MemorySystem::drained() const
{
    for (const auto &ch : channels_)
        if (!ch.readQ.empty() || !ch.writeQ.empty())
            return false;
    return true;
}

} // namespace xed::perfsim
