#include "perfsim/power.hh"

#include <algorithm>

namespace xed::perfsim
{

PowerBreakdown
computeMemoryPower(const MemStats &stats, std::uint64_t cycles,
                   const PowerConfig &config)
{
    PowerBreakdown out;
    if (cycles == 0)
        return out;
    const auto &t = config.timing;
    const auto &c = config.currents;
    const double seconds = static_cast<double>(cycles) * t.tCkSeconds;
    const double onDie = 1.0 + c.onDieEccOverhead;

    // Background: interpolate between precharge and active standby by
    // bus utilization (a proxy for how often rows are open).
    const double busCycles = static_cast<double>(stats.readBusCycles +
                                                 stats.writeBusCycles);
    const double utilization = std::min(
        1.0, busCycles / (static_cast<double>(cycles) *
                          config.physicalChannels));
    const double iBg = c.idd2n + (c.idd3n - c.idd2n) * utilization;
    out.background = onDie * iBg * c.vdd * config.totalRanks *
                     config.chipsPerRankEquiv;

    // Activate/precharge: per rank-activate event, per chip.
    const double eActChip =
        (c.idd0 - (c.idd3n * t.tRAS + c.idd2n * (t.tRC - t.tRAS)) /
                      t.tRC) *
        c.vdd * t.tRC * t.tCkSeconds;
    out.activate = onDie * eActChip * config.chipsPerRankEquiv *
                   static_cast<double>(stats.rankActivates) / seconds;

    // Read/write bursts: incremental current over active standby for
    // the *useful* 64B of each access (tBurst cycles). Overfetch and
    // protocol padding cost bus time, activates and background power,
    // but the IO energy of a line is counted once -- the accounting
    // under which the paper's Chipkill shows a net power *reduction*
    // from its longer execution time (Figure 12).
    const double eReadCycle =
        (c.idd4r - c.idd3n) * c.vdd * t.tCkSeconds;
    const double eWriteCycle =
        (c.idd4w - c.idd3n) * c.vdd * t.tCkSeconds;
    out.readWrite =
        config.ioEnergyScale * config.chipsPerRankEquiv * t.tBurst *
        (eReadCycle * static_cast<double>(stats.reads) +
         eWriteCycle * static_cast<double>(stats.writes)) /
        seconds;

    // Refresh: per per-rank refresh event.
    const double eRefresh =
        (c.idd5 - c.idd3n) * c.vdd * t.tRFC * t.tCkSeconds;
    out.refresh = onDie * eRefresh * config.chipsPerRankEquiv *
                  static_cast<double>(stats.refreshes) / seconds;
    return out;
}

} // namespace xed::perfsim
