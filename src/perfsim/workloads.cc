#include "perfsim/workloads.hh"

#include <stdexcept>

namespace xed::perfsim
{

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Spec2006: return "SPEC 2006";
      case Suite::Parsec: return "PARSEC";
      case Suite::BioBench: return "BIOBENCH";
      case Suite::Commercial: return "COMMERCIAL";
    }
    return "?";
}

const std::vector<Workload> &
paperWorkloads()
{
    // {name, suite, MPKI, row-hit rate, write fraction, MLP}
    // MPKI and locality follow published characterizations of the
    // memory-intensive (>1 MPKI) subset the paper selects; MLP encodes
    // streaming (high) vs pointer-chasing (low) behaviour.
    static const std::vector<Workload> table = {
        {"GemsFDTD", Suite::Spec2006, 16.0, 0.80, 0.30, 8},
        {"sphinx", Suite::Spec2006, 8.0, 0.75, 0.15, 6},
        {"gcc", Suite::Spec2006, 4.5, 0.60, 0.30, 4},
        {"leslie3d", Suite::Spec2006, 10.0, 0.80, 0.30, 7},
        {"bwaves", Suite::Spec2006, 15.0, 0.85, 0.25, 8},
        {"libquantum", Suite::Spec2006, 16.0, 0.95, 0.25, 12},
        {"milc", Suite::Spec2006, 12.0, 0.70, 0.30, 7},
        {"soplex", Suite::Spec2006, 14.0, 0.70, 0.20, 6},
        {"lbm", Suite::Spec2006, 16.0, 0.85, 0.45, 10},
        {"mcf", Suite::Spec2006, 26.0, 0.20, 0.20, 2},
        {"wrf", Suite::Spec2006, 5.5, 0.75, 0.30, 5},
        {"cactusADM", Suite::Spec2006, 5.0, 0.70, 0.35, 5},
        {"zeusmp", Suite::Spec2006, 5.0, 0.70, 0.30, 5},
        {"bzip2", Suite::Spec2006, 3.5, 0.65, 0.30, 4},
        {"dealII", Suite::Spec2006, 3.0, 0.70, 0.25, 4},
        {"omnetpp", Suite::Spec2006, 8.0, 0.40, 0.30, 3},
        {"xalancbmk", Suite::Spec2006, 3.0, 0.50, 0.25, 3},
        {"black", Suite::Parsec, 2.8, 0.60, 0.25, 4},
        {"face", Suite::Parsec, 4.0, 0.70, 0.30, 5},
        {"ferret", Suite::Parsec, 4.5, 0.65, 0.25, 5},
        {"fluid", Suite::Parsec, 3.5, 0.70, 0.30, 5},
        {"freq", Suite::Parsec, 3.5, 0.65, 0.25, 4},
        {"stream", Suite::Parsec, 7.5, 0.80, 0.35, 7},
        {"swapt", Suite::Parsec, 3.0, 0.65, 0.25, 4},
        {"tigr", Suite::BioBench, 11.0, 0.60, 0.10, 5},
        {"mummer", Suite::BioBench, 13.0, 0.65, 0.10, 6},
        {"comm1", Suite::Commercial, 13.0, 0.55, 0.35, 5},
        {"comm2", Suite::Commercial, 10.0, 0.55, 0.35, 5},
        {"comm3", Suite::Commercial, 8.5, 0.60, 0.30, 4},
        {"comm4", Suite::Commercial, 7.0, 0.60, 0.30, 4},
        {"comm5", Suite::Commercial, 8.0, 0.55, 0.35, 5},
    };
    return table;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const auto &w : paperWorkloads())
        if (w.name == name)
            return w;
    throw std::out_of_range("unknown workload: " + name);
}

} // namespace xed::perfsim
