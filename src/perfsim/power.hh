/**
 * @file
 * Micron TN-41-01-style DDR3 power model (Section X). Computes memory
 * power from the event counters of a simulation run:
 *
 *   - background power (precharge/active standby, utilization-weighted)
 *   - activate/precharge energy per rank-activate event
 *   - read/write burst energy per data-bus cycle
 *   - refresh energy per per-rank refresh event
 *
 * Background, activate and refresh currents carry the +12.5% On-Die
 * ECC overhead the paper applies.
 */

#ifndef XED_PERFSIM_POWER_HH
#define XED_PERFSIM_POWER_HH

#include "perfsim/ddr_timing.hh"
#include "perfsim/memsys.hh"

namespace xed::perfsim
{

struct PowerBreakdown
{
    double background = 0; ///< W
    double activate = 0;   ///< W
    double readWrite = 0;  ///< W
    double refresh = 0;    ///< W

    double
    total() const
    {
        return background + activate + readWrite + refresh;
    }
};

struct PowerConfig
{
    TimingParams timing{};
    PowerParams currents{};
    /** x8-equivalent chips per rank (a rank of 18 x4 = 9 x8-equiv). */
    double chipsPerRankEquiv = 9.0;
    /** Total physical rank-units in the system (Table V: 4ch x 2). */
    double totalRanks = 8.0;
    /** Physical data buses (4, regardless of ganging). */
    double physicalChannels = 4.0;
    /** IO energy per access relative to one 64B line (ModeEffects). */
    double ioEnergyScale = 1.0;
};

/**
 * Memory power for a run of @p cycles memory cycles with the given
 * event counters.
 */
PowerBreakdown computeMemoryPower(const MemStats &stats,
                                  std::uint64_t cycles,
                                  const PowerConfig &config);

} // namespace xed::perfsim

#endif // XED_PERFSIM_POWER_HH
