#include "fleet/fleet.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/rng.hh"
#include "dram/geometry.hh"
#include "faultsim/fault_range.hh"
#include "obs/trace.hh"

namespace xed::fleet
{

namespace
{

using faultsim::FaultEvent;
using faultsim::SampleContext;

constexpr double noEvent = std::numeric_limits<double>::infinity();

/** See engine.cc: expected faults per DIMM lifetime is ~0.07, so 64
 *  events is far beyond the high-water mark; reserving makes the
 *  steady-state slot loop allocation-free. */
constexpr std::size_t eventReserve = 64;

/**
 * Per-shard immutable state of one cohort, built once and shared by
 * every slot of the cohort in the shard: the scheme evaluator, the
 * DIMM shape, and a lazily filled SampleContext per install epoch
 * (the remaining-lifetime window shrinks as replacements happen, so
 * each install epoch needs its own context).
 */
struct CohortRuntime
{
    const FleetCohort *cohort = nullptr;
    std::unique_ptr<faultsim::Scheme> scheme;
    faultsim::DimmShape shape;
    std::vector<std::unique_ptr<SampleContext>> contexts; ///< by epoch

    const SampleContext &
    contextFor(unsigned epoch, const FleetConfig &config,
               const faultsim::AddressLayout &layout)
    {
        auto &slot = contexts[epoch];
        if (!slot) {
            const double remaining =
                config.horizonHours() -
                static_cast<double>(epoch) * config.setup.epochHours;
            slot = std::make_unique<SampleContext>(
                cohort->fit, layout, shape, remaining,
                cohort->scrubIntervalHours, config.sampler);
        }
        return *slot;
    }
};

/** Time of the n-th earliest permanent fault in @p events, or
 *  noEvent when fewer than @p n are permanent. @p times is reusable
 *  scratch. */
double
nthPermanentFaultTime(const std::vector<FaultEvent> &events, unsigned n,
                      std::vector<double> &times)
{
    times.clear();
    for (const FaultEvent &ev : events)
        if (!ev.transient)
            times.push_back(ev.timeHours);
    if (times.size() < n)
        return noEvent;
    std::nth_element(times.begin(), times.begin() + (n - 1),
                     times.end());
    return times[n - 1];
}

} // namespace

void
CohortSeries::merge(const CohortSeries &other)
{
    const auto mergeInto = [](std::vector<std::uint64_t> &into,
                              const std::vector<std::uint64_t> &from) {
        if (into.size() < from.size())
            into.resize(from.size(), 0);
        for (std::size_t i = 0; i < from.size(); ++i)
            into[i] += from[i];
    };
    mergeInto(installs, other.installs);
    mergeInto(removals, other.removals);
    mergeInto(due, other.due);
    mergeInto(sdc, other.sdc);
    mergeInto(replacements, other.replacements);
    mergeInto(retirements, other.retirements);
    attribution.merge(other.attribution);
}

namespace
{
std::uint64_t
sumOf(const std::vector<std::uint64_t> &values)
{
    std::uint64_t total = 0;
    for (const std::uint64_t v : values)
        total += v;
    return total;
}
} // namespace

std::uint64_t CohortSeries::totalDue() const { return sumOf(due); }
std::uint64_t CohortSeries::totalSdc() const { return sumOf(sdc); }
std::uint64_t CohortSeries::totalInstalls() const
{
    return sumOf(installs);
}
std::uint64_t CohortSeries::totalReplacements() const
{
    return sumOf(replacements);
}
std::uint64_t CohortSeries::totalRetirements() const
{
    return sumOf(retirements);
}

void
FleetResult::merge(const FleetResult &other)
{
    if (cohorts.size() < other.cohorts.size())
        cohorts.resize(other.cohorts.size());
    for (std::size_t c = 0; c < other.cohorts.size(); ++c)
        cohorts[c].merge(other.cohorts[c]);
}

FleetResult
runFleetShard(const FleetConfig &config, std::uint64_t begin,
              std::uint64_t end, faultsim::McProgress *progress)
{
    const FleetSetup &setup = config.setup;
    const unsigned epochs = config.epochs();
    const double epochHours = setup.epochHours;
    const FleetPolicies &policies = setup.policies;
    const faultsim::AddressLayout layout{dram::ChipGeometry{}};

    FleetResult result;
    result.cohorts.resize(setup.cohorts.size());
    for (auto &series : result.cohorts)
        series.resize(epochs);
    if (begin >= end || epochs == 0)
        return result;

    // Progress flushes in batches: one relaxed fetch_add per
    // progressBatch slots, mirroring the engine's discipline.
    constexpr std::uint64_t progressBatch = 256;
    std::uint64_t batchedSlots = 0;
    std::uint64_t batchedFailures = 0;
    const auto flushProgress = [&] {
        if (progress && batchedSlots) {
            progress->systemsDone.fetch_add(batchedSlots,
                                            std::memory_order_relaxed);
            progress->failedSystems.fetch_add(
                batchedFailures, std::memory_order_relaxed);
            batchedSlots = batchedFailures = 0;
        }
    };

    // Reusable per-shard buffers: the steady-state slot loop (a
    // zero-fault lifetime, >= 93% of installations at Table I rates)
    // costs one RNG draw and one integer compare, nothing else.
    std::vector<FaultEvent> events;
    events.reserve(eventReserve);
    faultsim::EvalScratch scratch;
    scratch.reserve(eventReserve);
    std::vector<double> permanentTimes;
    permanentTimes.reserve(eventReserve);

    const std::uint64_t mixedSeed = Rng::mixSeed(config.seed);

    // Walk the cohort segments overlapping [begin, end): cohorts
    // occupy consecutive slot ranges in declaration order.
    std::uint64_t cohortFirst = 0;
    for (std::size_t c = 0; c < setup.cohorts.size(); ++c) {
        const FleetCohort &cohort = setup.cohorts[c];
        const std::uint64_t cohortLast = cohortFirst + cohort.dimms;
        const std::uint64_t lo = std::max(begin, cohortFirst);
        const std::uint64_t hi = std::min(end, cohortLast);
        cohortFirst = cohortLast;
        if (lo >= hi || cohort.deployEpoch >= epochs)
            continue;

        XED_TRACE_SPAN_ARG("fleet.cohort", "fleet", "slots", hi - lo);
        CohortRuntime runtime;
        runtime.cohort = &cohort;
        runtime.scheme = makeScheme(cohort.scheme, config.onDie);
        runtime.shape = runtime.scheme->dimmShape();
        runtime.contexts.resize(epochs);
        CohortSeries &series = result.cohorts[c];

        for (std::uint64_t slot = lo; slot < hi; ++slot) {
            Rng rng = Rng::streamMixed(mixedSeed, slot);
            unsigned epoch = cohort.deployEpoch;
            ++series.installs[epoch];
            // One iteration per installation of this slot; each
            // replacement continues drawing from the slot's stream.
            for (;;) {
                const SampleContext &ctx =
                    runtime.contextFor(epoch, config, layout);
                const unsigned count = ctx.sampleFaultCount(rng);
                if (count == 0)
                    break; // fault-free to the horizon
                sampleDimmFaultsInto(rng, ctx, count, events);
                const auto failure = runtime.scheme->evaluateDimm(
                    events, layout, rng, scratch);
                const double failAt =
                    failure ? failure->timeHours : noEvent;
                const double retireAt =
                    policies.retireAfterPermanentFaults
                        ? nthPermanentFaultTime(
                              events,
                              policies.retireAfterPermanentFaults,
                              permanentTimes)
                        : noEvent;
                if (failAt == noEvent && retireAt == noEvent)
                    break; // faults present but never actionable

                // Event times are relative to this installation; map
                // the earliest actionable one to its absolute epoch.
                const double installHours =
                    static_cast<double>(epoch) * epochHours;
                const auto epochOf = [&](double t) {
                    const double abs = installHours + t;
                    const auto e = static_cast<std::uint64_t>(
                        abs / epochHours);
                    return static_cast<unsigned>(std::min<std::uint64_t>(
                        std::max<std::uint64_t>(e, epoch), epochs - 1));
                };

                bool pulled = false;
                unsigned pulledAt = 0;
                if (failAt < retireAt) {
                    const unsigned failEpoch = epochOf(failAt);
                    series.attribution.record(failure->cls,
                                              failure->kindsMask,
                                              failure->outcome);
                    ++batchedFailures;
                    if (failure->cls == obs::FailureClass::Due)
                        ++series.due[failEpoch];
                    else
                        ++series.sdc[failEpoch];
                    // An SDC is silent, and a DUE without the
                    // replace-on-DUE policy stays racked: either way
                    // this installation's processing ends here (the
                    // earliest-actionable-event model, DESIGN 4h).
                    if (failure->cls != obs::FailureClass::Due ||
                        !policies.replaceOnDue)
                        break;
                    pulled = true;
                    pulledAt = failEpoch;
                } else {
                    // Retirement wins ties: the threshold pull is
                    // scheduled maintenance, the failure is not.
                    const unsigned retireEpoch = epochOf(retireAt);
                    ++series.retirements[retireEpoch];
                    pulled = true;
                    pulledAt = retireEpoch;
                }

                if (!pulled)
                    break;
                // The DIMM served epoch pulledAt (the event happened
                // during it) and is out of service from the next
                // epoch's start.
                if (pulledAt + 1 >= epochs)
                    break; // pulled at the horizon; nothing re-enters
                ++series.removals[pulledAt + 1];
                const std::uint64_t reinstall =
                    static_cast<std::uint64_t>(pulledAt) + 1 +
                    policies.replacementLagEpochs;
                if (reinstall >= epochs)
                    break; // replacement would land past the horizon
                epoch = static_cast<unsigned>(reinstall);
                ++series.installs[epoch];
                ++series.replacements[epoch];
            }
            if (++batchedSlots == progressBatch)
                flushProgress();
        }
    }
    flushProgress();
    return result;
}

std::vector<std::uint64_t>
inServiceSeries(const CohortSeries &series)
{
    std::vector<std::uint64_t> inService(series.epochs(), 0);
    std::uint64_t level = 0;
    for (unsigned e = 0; e < series.epochs(); ++e) {
        level += series.installs[e];
        level -= series.removals[e];
        inService[e] = level;
    }
    return inService;
}

std::optional<unsigned>
canaryAlertEpoch(const CohortSeries &series, std::uint64_t dimms,
                 double threshold)
{
    if (threshold <= 0 || dimms == 0)
        return std::nullopt;
    // ceil(threshold * dimms), but at least one DUE: an alert should
    // never fire on a cohort that has seen nothing.
    const double scaled =
        std::ceil(threshold * static_cast<double>(dimms));
    const std::uint64_t needed = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(scaled));
    std::uint64_t seen = 0;
    for (unsigned e = 0; e < series.epochs(); ++e) {
        seen += series.due[e];
        if (seen >= needed)
            return e;
    }
    return std::nullopt;
}

} // namespace xed::fleet
