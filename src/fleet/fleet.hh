/**
 * @file
 * Fleet-lifetime simulation: a population of heterogeneous DIMMs on
 * one shared timeline (ROADMAP item 5, DESIGN.md Section 4h).
 *
 * Where the Monte-Carlo engine treats each "system" as an independent
 * 7-year lifetime, fleet mode asks the deployment-team question: what
 * availability and SDC curves does a *population* of mixed-scheme,
 * mixed-vendor DIMMs trace over time under real maintenance policies?
 * A fleet is declared as cohorts -- count x {scheme, vendor FIT
 * profile, deployment epoch, scrub schedule, canary flag} -- plus
 * fleet-wide policies (replace-on-DUE with a replacement lag, DIMM
 * retirement after accumulated permanent faults, canary DUE alert
 * thresholds). Time advances in fixed epochs (monthly by default) and
 * results are per-cohort, per-epoch integer delta series that merge
 * exactly, plus the standard obs::FailureAttribution breakdown.
 *
 * Determinism contract (what makes fleet runs shard-cut invariant,
 * byte-identical across thread counts, and mergeable over the
 * distributed queue):
 *
 *  - Every fleet SLOT (a physical socket that holds a succession of
 *    DIMMs as replacements happen) owns the counter-based RNG stream
 *    Rng::stream(seed, slot). All installations of that slot draw
 *    sequentially from this one stream, and a slot's entire multi-
 *    year history is simulated by whichever shard covers its index --
 *    so results are a pure function of (config, slot), independent of
 *    how [0, totalDimms) is cut into shards.
 *  - Policy resolution within an installation is ordered: the
 *    earliest of (scheme failure, retirement threshold) is the one
 *    actionable event; ties resolve to retirement. An SDC, or a DUE
 *    with replace-on-DUE disabled, is recorded once and ends the
 *    installation's event processing (the DIMM stays in service to
 *    the horizon). See DESIGN.md Section 4h for the rationale.
 *  - Per-epoch accounting is pure integer deltas (installs, removals,
 *    DUE/SDC observations, replacements, retirements), so merging
 *    shard results is exact, associative and order-insensitive; all
 *    derived series (in-service counts, availability, scrub traffic)
 *    are computed from the merged deltas at summary time.
 */

#ifndef XED_FLEET_FLEET_HH
#define XED_FLEET_FLEET_HH

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "faultsim/engine.hh"
#include "faultsim/fault_model.hh"
#include "faultsim/fit_rates.hh"
#include "faultsim/scheme.hh"
#include "obs/forensics.hh"

namespace xed::fleet
{

/** One homogeneous slice of the fleet: @p dimms identical slots. */
struct FleetCohort
{
    /** Cohort label, [A-Za-z0-9_.-]; unique within a fleet. */
    std::string name;
    faultsim::SchemeKind scheme = faultsim::SchemeKind::Secded;
    /** Number of slots (sockets); each holds one DIMM at a time. */
    std::uint64_t dimms = 0;
    /** First epoch this cohort is in service (staged rollouts). */
    unsigned deployEpoch = 0;
    /** Canary cohorts are observational: they never feed back into
     *  the simulation (that would couple shards), but the summary
     *  derives a deterministic alert epoch from their DUE series. */
    bool canary = false;
    /** Patrol-scrub period for this cohort's DIMMs; 0 disables.
     *  Scrub phase restarts at each installation. */
    double scrubIntervalHours = 0;
    /** Vendor FIT profile; defaults to Table I. */
    faultsim::FitTable fit{};
};

/** Fleet-wide maintenance policies. */
struct FleetPolicies
{
    /** Pull a DIMM after a DUE and install a replacement. */
    bool replaceOnDue = true;
    /** Epochs between pulling a DIMM and its replacement entering
     *  service (procurement / datacenter-visit lag). */
    unsigned replacementLagEpochs = 1;
    /** Retire (pull) a DIMM once it has accumulated this many
     *  permanent faults, before they combine into a failure.
     *  0 disables retirement. */
    unsigned retireAfterPermanentFaults = 0;
    /** Cumulative-DUE fraction of a canary cohort that raises the
     *  fleet alert (summary-time derivation); 0 disables. */
    double canaryDueThreshold = 0;
};

/** The declarative part of a fleet (cohorts + policies + epoch). */
struct FleetSetup
{
    /** Epoch length; the default is one month of the 365.25-day
     *  year, so 12 epochs per simulated year. */
    double epochHours = hoursPerYear / 12.0;
    FleetPolicies policies;
    std::vector<FleetCohort> cohorts;

    /** Total slots; cohorts occupy consecutive slot-index ranges in
     *  declaration order, so slot -> cohort is a prefix-sum lookup. */
    std::uint64_t
    totalDimms() const
    {
        std::uint64_t total = 0;
        for (const auto &cohort : cohorts)
            total += cohort.dimms;
        return total;
    }

    /** First slot index of cohort @p index. */
    std::uint64_t
    cohortBegin(std::size_t index) const
    {
        std::uint64_t begin = 0;
        for (std::size_t i = 0; i < index; ++i)
            begin += cohorts[i].dimms;
        return begin;
    }
};

/** Everything runFleetShard needs; assembled from a campaign spec by
 *  campaign::fleetConfigFor(). */
struct FleetConfig
{
    FleetSetup setup;
    std::uint64_t seed = 0;
    double years = evaluationYears;
    faultsim::PoissonSampler sampler = faultsim::PoissonSampler::Knuth;
    faultsim::OnDieOptions onDie{};

    double horizonHours() const { return years * hoursPerYear; }
    /** Number of epochs covering the horizon (last may be partial). */
    unsigned
    epochs() const
    {
        return static_cast<unsigned>(
            std::ceil(horizonHours() / setup.epochHours));
    }
};

/**
 * Per-cohort, per-epoch event deltas. Each array has one entry per
 * epoch; every entry is an exact integer count of events observed in
 * (or effective from the start of) that epoch, so merging shard
 * results is elementwise addition. Derived time series (in-service
 * counts, availability, scrub traffic) are prefix sums over these
 * deltas -- see inServiceSeries().
 */
struct CohortSeries
{
    /** DIMMs entering service at the start of epoch e (initial
     *  deployment and replacements). */
    std::vector<std::uint64_t> installs;
    /** DIMMs out of service from the start of epoch e (pulled after a
     *  DUE or a retirement during epoch e-1). */
    std::vector<std::uint64_t> removals;
    /** Detected uncorrectable errors observed during epoch e. */
    std::vector<std::uint64_t> due;
    /** Silent data corruptions during epoch e. */
    std::vector<std::uint64_t> sdc;
    /** Replacement installs during epoch e (subset of installs). */
    std::vector<std::uint64_t> replacements;
    /** Retirement pulls during epoch e (threshold policy). */
    std::vector<std::uint64_t> retirements;
    /** Class x kind-set x outcome attribution of every recorded
     *  failure (same machinery as the reliability campaigns). */
    obs::FailureAttribution attribution;

    void
    resize(unsigned epochs)
    {
        installs.assign(epochs, 0);
        removals.assign(epochs, 0);
        due.assign(epochs, 0);
        sdc.assign(epochs, 0);
        replacements.assign(epochs, 0);
        retirements.assign(epochs, 0);
    }

    unsigned
    epochs() const
    {
        return static_cast<unsigned>(installs.size());
    }

    /** Exact elementwise fold; order-insensitive. An empty side is
     *  the merge identity. */
    void merge(const CohortSeries &other);

    std::uint64_t totalDue() const;
    std::uint64_t totalSdc() const;
    std::uint64_t totalInstalls() const;
    std::uint64_t totalReplacements() const;
    std::uint64_t totalRetirements() const;
};

/** One shard's (or the whole fleet's) merged per-cohort series. */
struct FleetResult
{
    std::vector<CohortSeries> cohorts;

    /** Exact merge; an empty (default) side is the identity. */
    void merge(const FleetResult &other);
};

/**
 * Simulate slots [begin, end) of the fleet, single-threaded, and
 * return the partial per-cohort series. Slot s draws from
 * Rng::stream(config.seed, s) and its full history runs here, so
 * merging adjacent shards reproduces the whole-fleet result exactly
 * regardless of where the range was cut. @p progress (optional)
 * receives batched slot / failure-event counts.
 */
FleetResult runFleetShard(const FleetConfig &config, std::uint64_t begin,
                          std::uint64_t end,
                          faultsim::McProgress *progress = nullptr);

/**
 * DIMMs of one cohort in service at the start of each epoch:
 * inService[e] = sum(installs[0..e]) - sum(removals[0..e]).
 */
std::vector<std::uint64_t> inServiceSeries(const CohortSeries &series);

/**
 * First epoch at which a canary cohort's cumulative DUE count reaches
 * @p threshold x @p dimms (ceiling, at least one DUE); nullopt when
 * never reached or the threshold is disabled (<= 0).
 */
std::optional<unsigned> canaryAlertEpoch(const CohortSeries &series,
                                         std::uint64_t dimms,
                                         double threshold);

} // namespace xed::fleet

#endif // XED_FLEET_FLEET_HH
