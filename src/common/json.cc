#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xed::json
{

double
Value::asDouble() const
{
    switch (rep_) {
      case NumRep::Dbl: return dbl_;
      case NumRep::Int: return static_cast<double>(int_);
      case NumRep::Uint: return static_cast<double>(uint_);
    }
    return 0;
}

std::uint64_t
Value::asUint() const
{
    if (rep_ == NumRep::Uint)
        return uint_;
    if (rep_ == NumRep::Int && int_ >= 0)
        return static_cast<std::uint64_t>(int_);
    return 0;
}

std::int64_t
Value::asInt() const
{
    if (rep_ == NumRep::Int)
        return int_;
    if (rep_ == NumRep::Uint &&
        uint_ <= static_cast<std::uint64_t>(INT64_MAX))
        return static_cast<std::int64_t>(uint_);
    return 0;
}

const Value *
Value::find(std::string_view key) const
{
    for (const auto &[name, value] : members_)
        if (name == key)
            return &value;
    return nullptr;
}

void
Value::set(std::string key, Value v)
{
    kind_ = Kind::Object;
    for (auto &[name, value] : members_) {
        if (name == key) {
            value = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

bool
operator==(const Value &a, const Value &b)
{
    if (a.kind_ != b.kind_)
        return false;
    switch (a.kind_) {
      case Value::Kind::Null: return true;
      case Value::Kind::Bool: return a.bool_ == b.bool_;
      case Value::Kind::Number:
        // Exact integers compare exactly; anything involving a double
        // compares as doubles (2.0 == 2).
        if (a.rep_ != Value::NumRep::Dbl && b.rep_ != Value::NumRep::Dbl) {
            if (a.rep_ == b.rep_) {
                return a.rep_ == Value::NumRep::Int ? a.int_ == b.int_
                                                    : a.uint_ == b.uint_;
            }
            const auto &i = a.rep_ == Value::NumRep::Int ? a : b;
            const auto &u = a.rep_ == Value::NumRep::Int ? b : a;
            return i.int_ >= 0 &&
                   static_cast<std::uint64_t>(i.int_) == u.uint_;
        }
        return a.asDouble() == b.asDouble();
      case Value::Kind::String: return a.str_ == b.str_;
      case Value::Kind::Array: return a.arr_ == b.arr_;
      case Value::Kind::Object: return a.members_ == b.members_;
    }
    return false;
}

namespace
{

constexpr int maxDepth = 64;

/** Recursive-descent parser over a string_view with offset tracking. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Value>
    run(std::string *error)
    {
        std::optional<Value> value = parseValue(0);
        if (value) {
            skipWs();
            if (pos_ != text_.size()) {
                fail("trailing characters after JSON document");
                value.reset();
            }
        }
        if (!value && error)
            *error = error_;
        return value;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::optional<Value>
    parseValue(int depth)
    {
        if (depth > maxDepth) {
            fail("nesting deeper than " + std::to_string(maxDepth));
            return std::nullopt;
        }
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        switch (text_[pos_]) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return parseString();
          case 't': return parseLiteral("true", Value(true));
          case 'f': return parseLiteral("false", Value(false));
          case 'n': return parseLiteral("null", Value(nullptr));
          default: return parseNumber();
        }
    }

    std::optional<Value>
    parseLiteral(const char *word, Value value)
    {
        const std::size_t n = std::strlen(word);
        if (text_.substr(pos_, n) != word) {
            fail("invalid literal");
            return std::nullopt;
        }
        pos_ += n;
        return value;
    }

    std::optional<Value>
    parseObject(int depth)
    {
        ++pos_; // '{'
        Value object = Value::object();
        skipWs();
        if (consume('}'))
            return object;
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                return std::nullopt;
            }
            auto key = parseString();
            if (!key)
                return std::nullopt;
            if (object.find(key->asString())) {
                fail("duplicate object key \"" + key->asString() + "\"");
                return std::nullopt;
            }
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return std::nullopt;
            }
            auto value = parseValue(depth + 1);
            if (!value)
                return std::nullopt;
            object.set(key->asString(), std::move(*value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return object;
            fail("expected ',' or '}' in object");
            return std::nullopt;
        }
    }

    std::optional<Value>
    parseArray(int depth)
    {
        ++pos_; // '['
        Value array = Value::array();
        skipWs();
        if (consume(']'))
            return array;
        while (true) {
            auto value = parseValue(depth + 1);
            if (!value)
                return std::nullopt;
            array.push(std::move(*value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return array;
            fail("expected ',' or ']' in array");
            return std::nullopt;
        }
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                digit = c - 'A' + 10;
            else
                return false;
            out = out << 4 | digit;
        }
        pos_ += 4;
        return true;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | cp >> 6);
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | cp >> 12);
            out += static_cast<char>(0x80 | (cp >> 6 & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | cp >> 18);
            out += static_cast<char>(0x80 | (cp >> 12 & 0x3F));
            out += static_cast<char>(0x80 | (cp >> 6 & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::optional<Value>
    parseString()
    {
        ++pos_; // '"'
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return std::nullopt;
            }
            const unsigned char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return Value(std::move(out));
            }
            if (c < 0x20) {
                fail("unescaped control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_; // '\'
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return std::nullopt;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  unsigned cp;
                  if (!parseHex4(cp)) {
                      fail("invalid \\u escape");
                      return std::nullopt;
                  }
                  if (cp >= 0xD800 && cp < 0xDC00) {
                      // High surrogate: a \uXXXX low surrogate must
                      // follow.
                      if (!(consume('\\') && consume('u'))) {
                          fail("unpaired high surrogate");
                          return std::nullopt;
                      }
                      unsigned low;
                      if (!parseHex4(low) || low < 0xDC00 || low > 0xDFFF) {
                          fail("invalid low surrogate");
                          return std::nullopt;
                      }
                      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                  } else if (cp >= 0xDC00 && cp < 0xE000) {
                      fail("unpaired low surrogate");
                      return std::nullopt;
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                fail("invalid escape character");
                return std::nullopt;
            }
        }
    }

    std::optional<Value>
    parseNumber()
    {
        const std::size_t start = pos_;
        bool negative = false;
        if (consume('-'))
            negative = true;
        // Integer part: "0" or nonzero digit followed by digits.
        if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
            fail("invalid number");
            return std::nullopt;
        }
        if (text_[pos_] == '0')
            ++pos_;
        else
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        bool integral = true;
        if (consume('.')) {
            integral = false;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9') {
                fail("digits required after decimal point");
                return std::nullopt;
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9') {
                fail("digits required in exponent");
                return std::nullopt;
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (integral) {
            // Keep counts exact: parse into uint64 / int64 when they
            // fit, falling back to double only on overflow.
            errno = 0;
            char *end = nullptr;
            if (!negative) {
                const std::uint64_t u =
                    std::strtoull(token.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Value(u);
            } else {
                const std::int64_t i =
                    std::strtoll(token.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Value(i);
            }
        }
        errno = 0;
        char *end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0' || !std::isfinite(d)) {
            fail("number out of range");
            return std::nullopt;
        }
        return Value(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, const Value &v)
{
    if (v.isIntegral()) {
        // asInt()/asUint() both reproduce the exact stored value for
        // in-range integers; pick by sign.
        if (v.asDouble() < 0)
            out += std::to_string(v.asInt());
        else
            out += std::to_string(v.asUint());
        return;
    }
    const double d = v.asDouble();
    if (!std::isfinite(d)) {
        out += "null"; // JSON cannot represent inf/nan
        return;
    }
    out += formatDouble(d);
}

void
dumpTo(std::string &out, const Value &v, int indent, int depth)
{
    const bool pretty = indent > 0;
    const auto newline = [&](int d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (v.kind()) {
      case Value::Kind::Null: out += "null"; break;
      case Value::Kind::Bool: out += v.asBool() ? "true" : "false"; break;
      case Value::Kind::Number: appendNumber(out, v); break;
      case Value::Kind::String: appendEscaped(out, v.asString()); break;
      case Value::Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            dumpTo(out, v.at(i), indent, depth + 1);
        }
        if (v.size())
            newline(depth);
        out += ']';
        break;
      case Value::Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < v.members().size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, v.members()[i].first);
            out += pretty ? ": " : ":";
            dumpTo(out, v.members()[i].second, indent, depth + 1);
        }
        if (v.members().size())
            newline(depth);
        out += '}';
        break;
    }
}

} // namespace

std::optional<Value>
parse(std::string_view text, std::string *error)
{
    return Parser(text).run(error);
}

std::string
dump(const Value &value)
{
    std::string out;
    dumpTo(out, value, 0, 0);
    return out;
}

std::string
dumpPretty(const Value &value)
{
    std::string out;
    dumpTo(out, value, 2, 0);
    return out;
}

std::string
formatDouble(double d)
{
    char buf[40];
    // Integral values print as plain integers ("10", not "1e+01");
    // below 2^53 the decimal form is exact, so it still round-trips.
    if (std::abs(d) < 0x1.0p53 && d == std::floor(d)) {
        std::snprintf(buf, sizeof buf, "%.0f", d);
        return buf;
    }
    // Shortest decimal form that strtod parses back to the same bits;
    // %.17g always round-trips, so the loop terminates.
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, d);
        if (std::strtod(buf, nullptr) == d)
            break;
    }
    // JSON requires a leading digit ("0.5", not ".5"); printf already
    // emits that form. Normalize "-0" to "0"? No: keep the sign so the
    // value round-trips exactly.
    return buf;
}

} // namespace xed::json
