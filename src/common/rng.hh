/**
 * @file
 * Deterministic pseudo-random number generation for the simulators.
 *
 * All Monte-Carlo components take an explicit Rng so that every experiment
 * is reproducible from a seed. The generator is xoshiro256**, which is far
 * faster than std::mt19937_64 and has no measurable bias for the uses in
 * this project (fault arrival sampling, address selection, error-pattern
 * injection).
 */

#ifndef XED_COMMON_RNG_HH
#define XED_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace xed
{

/** xoshiro256** by Blackman & Vigna, seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 seeding avoids correlated low-entropy states.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's multiply-shift. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection-free for our purposes: bias is < 2^-64 * bound.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Exponentially distributed variate with the given rate
     * (mean 1/rate). Used for fault inter-arrival times.
     */
    double
    exponential(double rate)
    {
        // 1 - uniform() is in (0, 1], avoiding log(0).
        return -std::log(1.0 - uniform()) / rate;
    }

    /**
     * Counter-based stream derivation: a deterministic, independent
     * stream for (seed, index) that does NOT depend on how many values
     * any other stream has consumed. The Monte-Carlo engine gives
     * system s the stream Rng::stream(config.seed, s), which makes the
     * results bit-identical for any worker-thread count (including 1).
     *
     * Contrast with fork(): forking advances the parent generator, so
     * the stream a system receives would depend on how many draws every
     * system before it made -- fine for a fixed serial order, useless
     * for reproducible sharding.
     */
    static Rng
    stream(std::uint64_t seed, std::uint64_t index)
    {
        // Two independent splitmix64 passes decorrelate seed and index
        // before the constructor's own splitmix64 expansion.
        return streamMixed(mixSeed(seed), index);
    }

    /**
     * The seed half of stream()'s derivation, hoisted: callers looping
     * over many stream indices (the Monte-Carlo system loop) mix the
     * seed once and derive each stream with streamMixed(). For any
     * seed, streamMixed(mixSeed(seed), i) == stream(seed, i).
     */
    static std::uint64_t mixSeed(std::uint64_t seed)
    {
        return mix64(seed);
    }

    static Rng
    streamMixed(std::uint64_t mixedSeed, std::uint64_t index)
    {
        return Rng(mixedSeed ^ mix64(~index * 0xD2B74407B1CE6E93ull));
    }

    /**
     * Fork an independent stream by drawing from this generator.
     * Suitable for handing a child component its own RNG at a fixed
     * point in a serial program; NOT suitable for per-system
     * parallelism (see stream()).
     */
    Rng
    fork()
    {
        return Rng(next() ^ 0xD2B74407B1CE6E93ull);
    }

  private:
    /** splitmix64 finalizer (Steele, Lea & Flood). */
    static std::uint64_t
    mix64(std::uint64_t z)
    {
        z += 0x9E3779B97F4A7C15ull;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace xed

#endif // XED_COMMON_RNG_HH
