#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace xed
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("Table row width mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title.empty())
        os << title << '\n';

    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << row[c];
            for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad)
                os << ' ';
        }
        os << '\n';
    };

    printRow(headers_);
    std::size_t total = 0;
    for (const auto w : widths)
        total += w + 2;
    os << "  ";
    for (std::size_t i = 2; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto &row : rows_)
        printRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

} // namespace xed
