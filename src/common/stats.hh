/**
 * @file
 * Statistics accumulators used by the Monte-Carlo engines and the
 * performance simulator: streaming mean/variance, binomial proportions
 * with confidence intervals, and simple named counters.
 */

#ifndef XED_COMMON_STATS_HH
#define XED_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace xed
{

/** Streaming mean / variance (Welford). */
class RunningStat
{
  public:
    void add(double x);
    /**
     * Fold another accumulator into this one (Chan's parallel Welford
     * update), so independent shards can be reduced after a parallel
     * run. Merging {A} into {B} gives the same moments as streaming
     * A then B through one accumulator, up to rounding.
     */
    void merge(const RunningStat &other);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Estimator for a binomial proportion (e.g. probability of system
 * failure) with a normal-approximation confidence interval. For very
 * small proportions the Wilson interval is used, which stays inside
 * [0, 1] and behaves sensibly when successes == 0.
 */
class Proportion
{
  public:
    void add(bool success) { ++trials_; successes_ += success ? 1 : 0; }
    void addMany(std::uint64_t successes, std::uint64_t trials);
    /** Fold another proportion's counts into this one. */
    void merge(const Proportion &other)
    {
        addMany(other.successes_, other.trials_);
    }

    std::uint64_t successes() const { return successes_; }
    std::uint64_t trials() const { return trials_; }
    double value() const;
    /** Wilson score interval half-width at ~95% (z = 1.96). */
    double halfWidth95() const;
    double lower95() const;
    double upper95() const;

  private:
    std::uint64_t successes_ = 0;
    std::uint64_t trials_ = 0;
};

/**
 * A bag of named integer counters (DUE/SDC breakdowns etc.). Lookups
 * are heterogeneous (string_view / literal keys), so incrementing an
 * existing counter from a hot loop allocates nothing; only the first
 * occurrence of a name materializes a std::string key.
 */
class CounterSet
{
  public:
    void inc(std::string_view name, std::uint64_t by = 1);
    /** Fold another counter set's counts into this one. */
    void merge(const CounterSet &other);
    std::uint64_t get(std::string_view name) const;
    const std::map<std::string, std::uint64_t, std::less<>> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
};

} // namespace xed

#endif // XED_COMMON_STATS_HH
