/**
 * @file
 * A small hand-rolled JSON value type, strict parser and deterministic
 * writer for the campaign subsystem (specs, JSONL result stores,
 * telemetry lines).
 *
 * Design constraints, in priority order:
 *  1. Deterministic output: dumping the same Value always yields the
 *     same bytes. Object members keep insertion order, integers print
 *     exactly, and doubles use the shortest representation that
 *     round-trips through strtod. This is what makes a resumed
 *     campaign's JSONL file byte-identical to an uninterrupted run.
 *  2. Exact integers: Monte-Carlo trial/success counts are uint64 and
 *     must survive a round-trip without drifting through a double.
 *  3. Strict parsing: malformed input (truncated documents, trailing
 *     garbage, duplicate keys, bad escapes) is rejected with a
 *     position-bearing error, never silently repaired -- a campaign
 *     spec typo should fail --dry-run, not simulate the wrong thing.
 */

#ifndef XED_COMMON_JSON_HH
#define XED_COMMON_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xed::json
{

class Value;

/** Insertion-ordered object member (determinism requires no sorting). */
using Member = std::pair<std::string, Value>;

class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), rep_(NumRep::Dbl), dbl_(d) {}
    Value(std::int64_t i) : kind_(Kind::Number), rep_(NumRep::Int), int_(i) {}
    Value(std::uint64_t u) : kind_(Kind::Number), rep_(NumRep::Uint), uint_(u)
    {}
    Value(int i) : Value(static_cast<std::int64_t>(i)) {}
    Value(unsigned u) : Value(static_cast<std::uint64_t>(u)) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : Value(std::string(s)) {}

    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }
    /** Number that was written without '.', 'e' and fits an integer. */
    bool isIntegral() const
    {
        return kind_ == Kind::Number && rep_ != NumRep::Dbl;
    }

    /** Accessors: the caller must have checked the kind. */
    bool asBool() const { return bool_; }
    double asDouble() const;
    /** Exact unsigned value; requires isIntegral() and >= 0. */
    std::uint64_t asUint() const;
    /** Exact signed value; requires isIntegral() and fitting int64. */
    std::int64_t asInt() const;
    const std::string &asString() const { return str_; }

    // -- Array interface ------------------------------------------------
    std::size_t size() const
    {
        return kind_ == Kind::Array ? arr_.size() : members_.size();
    }
    const Value &at(std::size_t i) const { return arr_[i]; }
    const std::vector<Value> &items() const { return arr_; }
    void push(Value v) { arr_.push_back(std::move(v)); }

    // -- Object interface -----------------------------------------------
    const std::vector<Member> &members() const { return members_; }
    /** Lookup; nullptr when absent (or not an object). */
    const Value *find(std::string_view key) const;
    /** Insert-or-overwrite, preserving first-insertion order. */
    void set(std::string key, Value v);

    friend bool operator==(const Value &a, const Value &b);

  private:
    enum class NumRep { Dbl, Int, Uint };

    Kind kind_ = Kind::Null;
    NumRep rep_ = NumRep::Dbl;
    bool bool_ = false;
    double dbl_ = 0;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<Member> members_;
};

/**
 * Parse a complete JSON document. The whole input must be consumed
 * (trailing whitespace allowed). On failure returns std::nullopt and,
 * when @p error is non-null, stores a message with the byte offset.
 */
std::optional<Value> parse(std::string_view text,
                           std::string *error = nullptr);

/**
 * Serialize compactly (no whitespace) and deterministically: members
 * in insertion order, integral numbers as exact integers, doubles as
 * the shortest string that strtod round-trips to the same bits.
 * Non-finite doubles (which JSON cannot represent) become null.
 */
std::string dump(const Value &value);

/** Serialize with 2-space indentation for human consumption. */
std::string dumpPretty(const Value &value);

/** Shortest strtod-round-tripping decimal form of a finite double. */
std::string formatDouble(double d);

} // namespace xed::json

#endif // XED_COMMON_JSON_HH
