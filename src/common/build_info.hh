/**
 * @file
 * Build provenance baked in at configure time: git revision, compiler,
 * optimization flags, build type and instrumentation options. Stamped
 * into the telemetry run record and into every BENCH_*.json so a
 * bench-trajectory point (or a multi-hour campaign) is attributable
 * to the exact binary that produced it.
 *
 * The git hash is captured when cmake configures (not per build), so
 * it can lag uncommitted edits; the telemetry sidecar additionally
 * records a runtime `git describe` for the working tree.
 */

#ifndef XED_COMMON_BUILD_INFO_HH
#define XED_COMMON_BUILD_INFO_HH

#include "common/json.hh"

namespace xed
{

/** Configure-time `git describe --always --dirty`, or "unknown". */
const char *buildGitDescribe();
/** Compiler id + version, e.g. "GNU 12.2.0". */
const char *buildCompiler();
/** The CXX flags the tree was compiled with (base + build type). */
const char *buildFlags();
/** CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo". */
const char *buildType();
/** XED_SANITIZE value ("" when unsanitized). */
const char *buildSanitizer();
/** True when XED_TRACE span instrumentation is compiled in. */
bool buildTraceCompiled();

/** All of the above as one JSON object ("build" in run records). */
json::Value buildInfoJson();

} // namespace xed

#endif // XED_COMMON_BUILD_INFO_HH
