/**
 * @file
 * InlineVec<T, N>: a trivial fixed-capacity vector with inline storage.
 *
 * The controllers' per-read results (catch-word chip lists, per-beat
 * data) have small compile-time-bounded sizes; returning them in
 * std::vector put a handful of heap allocations on every read
 * transaction. InlineVec keeps the contents in the object itself, so
 * the functional read path stays allocation-free end to end.
 *
 * Deliberately minimal: only what the result structs and their tests
 * need (push_back, indexing, iteration, equality -- including against
 * std::vector -- and initializer-list assignment).
 */

#ifndef XED_COMMON_INLINE_VEC_HH
#define XED_COMMON_INLINE_VEC_HH

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>

namespace xed
{

template <typename T, std::size_t N> class InlineVec
{
  public:
    InlineVec() = default;

    InlineVec(std::initializer_list<T> init) { *this = init; }

    InlineVec &
    operator=(std::initializer_list<T> init)
    {
        assert(init.size() <= N);
        size_ = 0;
        for (const T &value : init)
            items_[size_++] = value;
        return *this;
    }

    void
    push_back(const T &value)
    {
        assert(size_ < N && "InlineVec capacity exceeded");
        items_[size_++] = value;
    }

    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    static constexpr std::size_t capacity() { return N; }

    T &
    operator[](std::size_t i)
    {
        assert(i < size_);
        return items_[i];
    }

    const T &
    operator[](std::size_t i) const
    {
        assert(i < size_);
        return items_[i];
    }

    T *begin() { return items_.data(); }
    T *end() { return items_.data() + size_; }
    const T *begin() const { return items_.data(); }
    const T *end() const { return items_.data() + size_; }
    T *data() { return items_.data(); }
    const T *data() const { return items_.data(); }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    /** Element-wise equality against any sized random-access range
     *  (another InlineVec, std::vector, std::array, ...). */
    template <typename Range>
    bool
    operator==(const Range &other) const
    {
        if (size_ != static_cast<std::size_t>(other.size()))
            return false;
        for (std::size_t i = 0; i < size_; ++i)
            if (!(items_[i] == other[i]))
                return false;
        return true;
    }

  private:
    std::array<T, N> items_{};
    std::size_t size_ = 0;
};

} // namespace xed

#endif // XED_COMMON_INLINE_VEC_HH
