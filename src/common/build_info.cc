#include "common/build_info.hh"

#include "common/simd.hh"

// The XED_BUILD_* macros are injected by src/common/CMakeLists.txt for
// this translation unit only; fall back loudly when built elsewhere.
#ifndef XED_BUILD_GIT
#define XED_BUILD_GIT "unknown"
#endif
#ifndef XED_BUILD_COMPILER
#define XED_BUILD_COMPILER "unknown"
#endif
#ifndef XED_BUILD_FLAGS
#define XED_BUILD_FLAGS ""
#endif
#ifndef XED_BUILD_TYPE
#define XED_BUILD_TYPE ""
#endif
#ifndef XED_BUILD_SANITIZE
#define XED_BUILD_SANITIZE ""
#endif
#ifndef XED_TRACE
#define XED_TRACE 1
#endif

namespace xed
{

const char *
buildGitDescribe()
{
    return XED_BUILD_GIT;
}

const char *
buildCompiler()
{
    return XED_BUILD_COMPILER;
}

const char *
buildFlags()
{
    return XED_BUILD_FLAGS;
}

const char *
buildType()
{
    return XED_BUILD_TYPE;
}

const char *
buildSanitizer()
{
    return XED_BUILD_SANITIZE;
}

bool
buildTraceCompiled()
{
    return XED_TRACE != 0;
}

json::Value
buildInfoJson()
{
    auto info = json::Value::object();
    info.set("git", buildGitDescribe());
    info.set("compiler", buildCompiler());
    info.set("flags", buildFlags());
    info.set("buildType", buildType());
    info.set("sanitizer", buildSanitizer());
    info.set("traceCompiled", buildTraceCompiled());
    // Unlike the configure-time fields above, the SIMD block is
    // resolved at RUN time: which kernels executed (level), what the
    // host could have run (detected), and the override that forced a
    // difference, null when none. Two otherwise-identical BENCH_*.json
    // entries from different machines stay distinguishable.
    auto simd = json::Value::object();
    simd.set("level", simdLevelName(simdLevel()));
    simd.set("detected", simdLevelName(simdDetectedLevel()));
    const std::string ovr = simdOverride();
    simd.set("override",
             ovr.empty() ? json::Value(nullptr) : json::Value(ovr));
    info.set("simd", std::move(simd));
    return info;
}

} // namespace xed
