#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace xed
{

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    // Chan, Golub & LeVeque (1983): pairwise update of the first two
    // moments from sub-aggregate (n, mean, M2) triples.
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nTotal = na + nb;
    mean_ += delta * (nb / nTotal);
    m2_ += other.m2_ + delta * delta * (na * nb / nTotal);
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Proportion::addMany(std::uint64_t successes, std::uint64_t trials)
{
    successes_ += successes;
    trials_ += trials;
}

double
Proportion::value() const
{
    return trials_ ? static_cast<double>(successes_) /
                         static_cast<double>(trials_)
                   : 0.0;
}

double
Proportion::halfWidth95() const
{
    if (trials_ == 0)
        return 0.0;
    const double z = 1.959963984540054;
    const double n = static_cast<double>(trials_);
    const double p = value();
    // Wilson score interval half-width.
    const double denom = 1.0 + z * z / n;
    const double spread =
        (z / denom) * std::sqrt(p * (1.0 - p) / n +
                                z * z / (4.0 * n * n));
    return spread;
}

double
Proportion::lower95() const
{
    if (trials_ == 0)
        return 0.0;
    const double z = 1.959963984540054;
    const double n = static_cast<double>(trials_);
    const double p = value();
    const double denom = 1.0 + z * z / n;
    const double centre = (p + z * z / (2.0 * n)) / denom;
    return std::max(0.0, centre - halfWidth95());
}

double
Proportion::upper95() const
{
    if (trials_ == 0)
        return 0.0;
    const double z = 1.959963984540054;
    const double n = static_cast<double>(trials_);
    const double p = value();
    const double denom = 1.0 + z * z / n;
    const double centre = (p + z * z / (2.0 * n)) / denom;
    return std::min(1.0, centre + halfWidth95());
}

void
CounterSet::inc(std::string_view name, std::uint64_t by)
{
    // Heterogeneous find first: incrementing a known counter must not
    // construct a temporary std::string (the Monte-Carlo hot loop
    // counts failure types by literal name).
    const auto it = counters_.find(name);
    if (it != counters_.end())
        it->second += by;
    else
        counters_.emplace(std::string(name), by);
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const auto &[name, count] : other.counters_)
        counters_[name] += count;
}

std::uint64_t
CounterSet::get(std::string_view name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

} // namespace xed
