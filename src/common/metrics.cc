#include "common/metrics.hh"

#include <cmath>

namespace xed
{

unsigned
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0) || !std::isfinite(value))
        return 0;
    int exp = 0;
    // frexp: value = frac * 2^exp with frac in [0.5, 1).
    double frac = std::frexp(value, &exp);
    if (exp < minExponent)
        return 1; // underflow clamps to the smallest real bucket
    // Octave exp spans [2^(exp-1), 2^exp): the last real bucket ends
    // at 2^(maxExponent-1), so exp == maxExponent already overflows.
    if (exp >= maxExponent)
        return bucketCount - 1;
    auto sub = static_cast<unsigned>((frac - 0.5) * 2.0 * subBuckets);
    if (sub >= subBuckets)
        sub = subBuckets - 1;
    return 1 +
           static_cast<unsigned>(exp - minExponent) * subBuckets + sub;
}

double
Histogram::bucketValue(unsigned index)
{
    if (index == 0 || index >= bucketCount)
        return 0.0;
    unsigned linear = index - 1;
    int exp = minExponent + static_cast<int>(linear / subBuckets);
    unsigned sub = linear % subBuckets;
    double lo = std::ldexp(
        0.5 + 0.5 * static_cast<double>(sub) / subBuckets, exp);
    double hi = std::ldexp(
        0.5 + 0.5 * static_cast<double>(sub + 1) / subBuckets, exp);
    return 0.5 * (lo + hi);
}

void
Histogram::merge(const Histogram &other)
{
    for (unsigned i = 0; i < bucketCount; ++i) {
        std::uint64_t n =
            other.buckets_[i].load(std::memory_order_relaxed);
        if (n)
            buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &b : buckets_)
        total += b.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::quantile(double q) const
{
    std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    auto rank = static_cast<std::uint64_t>(std::ceil(q * total));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < bucketCount; ++i) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= rank)
            return bucketValue(i);
    }
    return bucketValue(bucketCount - 1);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::map<std::string, std::uint64_t>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, counter] : counters_)
        out.emplace(name, counter->get());
    return out;
}

std::map<std::string, double>
MetricsRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> out;
    for (const auto &[name, gauge] : gauges_)
        out.emplace(name, gauge->get());
    return out;
}

std::map<std::string, const Histogram *>
MetricsRegistry::histograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, const Histogram *> out;
    for (const auto &[name, hist] : histograms_)
        out.emplace(name, hist.get());
    return out;
}

} // namespace xed
