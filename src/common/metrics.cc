#include "common/metrics.hh"

namespace xed
{

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

std::map<std::string, std::uint64_t>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, counter] : counters_)
        out.emplace(name, counter->get());
    return out;
}

std::map<std::string, double>
MetricsRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> out;
    for (const auto &[name, gauge] : gauges_)
        out.emplace(name, gauge->get());
    return out;
}

} // namespace xed
