/**
 * @file
 * Runtime SIMD dispatch for the batch kernels (SECDED detection,
 * GF(2^8) constant-multiplier rows, the Monte-Carlo zero-fault
 * filter).
 *
 * The level is decided ONCE per process from the running CPU
 * (CPUID-derived feature bits on x86-64, the architectural AdvSIMD
 * guarantee on aarch64), not from compile-time flags: a portable
 * binary built without -DXED_NATIVE still runs the AVX2/AVX-512
 * kernels on a machine that has them, and a -march=native binary
 * copied to an older box falls back instead of faulting on the first
 * vector instruction. XED_SIMD=scalar|neon|avx2|avx512 overrides the
 * resolved level, strict-parsed: garbage or a level the host cannot
 * execute throws instead of silently running something else.
 *
 * Byte-identity contract: every kernel behind this dispatch returns
 * results identical to its scalar loop at every level -- goldens,
 * JSONL stores and RNG draw sequences do not depend on the choice
 * (DESIGN.md section 4i).
 */

#ifndef XED_COMMON_SIMD_HH
#define XED_COMMON_SIMD_HH

#include <optional>
#include <string>
#include <string_view>

namespace xed
{

/**
 * Dispatch levels, ordered by preference within an architecture.
 * Scalar is valid everywhere; Neon only on aarch64; Avx2/Avx512 only
 * on x86-64 (Avx512 means the F+BW+DQ+VL subset every server part
 * since Skylake-SP ships together).
 */
enum class SimdLevel : unsigned
{
    Scalar = 0,
    Neon = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** Lower-case level name: "scalar", "neon", "avx2", "avx512". */
const char *simdLevelName(SimdLevel level);

/** Strict inverse of simdLevelName(); nullopt for anything else. */
std::optional<SimdLevel> parseSimdLevel(std::string_view name);

/** Best level the running CPU can execute (probed once, cached). */
SimdLevel simdDetectedLevel();

/** True iff the running CPU can execute kernels of @p level. */
bool simdLevelSupported(SimdLevel level);

/**
 * The level the kernels dispatch on: XED_SIMD if set (strict parse; a
 * malformed value or a level simdLevelSupported() rejects throws
 * std::runtime_error), otherwise simdDetectedLevel(). Resolved on
 * first call and cached; one relaxed atomic load afterwards, cheap
 * enough to sit at the top of every batch kernel.
 */
SimdLevel simdLevel();

/**
 * Force the resolved level, e.g. the benches' --simd flag or the
 * per-level equivalence tests. Throws std::runtime_error when the
 * host cannot execute @p level. Takes effect for every subsequent
 * simdLevel() call; not meant to race running kernels.
 *
 * @param origin provenance tag recorded by simdOverride(), e.g.
 *        "--simd=scalar"; the XED_SIMD resolution uses "XED_SIMD=...".
 */
void simdForceLevel(SimdLevel level, std::string_view origin);

/**
 * The override in effect ("XED_SIMD=avx2", "--simd=scalar"), or empty
 * when simdLevel() is the detected level. Stamped into build
 * provenance so BENCH_*.json says which kernels actually ran.
 */
std::string simdOverride();

} // namespace xed

#endif // XED_COMMON_SIMD_HH
