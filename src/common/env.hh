/**
 * @file
 * Strict environment-variable parsing shared by the engine, the
 * campaign runner and the bench harnesses.
 *
 * The knobs (XED_MC_SYSTEMS, XED_MC_THREADS, XED_MC_SEED, XED_TRIALS,
 * ...) gate multi-hour simulation campaigns, so a typo must fail
 * loudly instead of silently running with a default: std::strtoul
 * maps garbage to 0 and wraps on overflow, which is exactly the
 * failure mode these helpers replace.
 */

#ifndef XED_COMMON_ENV_HH
#define XED_COMMON_ENV_HH

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace xed
{

/**
 * Parse a full string as a base-10 unsigned 64-bit integer. Returns
 * nullopt for anything else: empty input, signs, whitespace, trailing
 * junk, or a value that overflows. No silent truncation.
 */
inline std::optional<std::uint64_t>
parseU64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }
    return value;
}

/**
 * Parse a full string as a finite base-10 double. Returns nullopt for
 * anything else: empty input, leading/trailing junk or whitespace,
 * hex floats, inf/nan. The CLI routes every fractional option
 * (--progress-interval, --lease-seconds, ...) through this so
 * "--progress-interval abc" is a usage error instead of silently
 * becoming 0.0 the way a bare strtod would make it.
 */
inline std::optional<double>
parseF64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    // strtod accepts leading whitespace, "0x..." hex floats and
    // "inf"/"nan"; none of those are sane knob values, so pre-screen
    // to digits, sign, decimal point and exponent characters only.
    for (const char c : text) {
        const bool ok = (c >= '0' && c <= '9') || c == '+' ||
                        c == '-' || c == '.' || c == 'e' || c == 'E';
        if (!ok)
            return std::nullopt;
    }
    const std::string owned(text);
    char *end = nullptr;
    const double value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size())
        return std::nullopt;
    if (!(value == value) ||
        value > std::numeric_limits<double>::max() ||
        value < -std::numeric_limits<double>::max())
        return std::nullopt; // nan or overflow to +-inf
    return value;
}

/**
 * Read an environment variable as a strict u64. Unset returns
 * nullopt; a set-but-invalid value throws std::runtime_error naming
 * the variable, so a mistyped XED_MC_THREADS aborts the run instead
 * of silently resolving to some default.
 */
inline std::optional<std::uint64_t>
envU64(const char *name)
{
    const char *value = std::getenv(name);
    if (!value)
        return std::nullopt;
    const auto parsed = parseU64(value);
    if (!parsed)
        throw std::runtime_error(
            std::string(name) + ": expected an unsigned base-10 " +
            "integer, got \"" + value + "\"");
    return parsed;
}

/**
 * Read an environment variable as a strict u64 that must be positive.
 * For knobs where 0 is meaningless rather than an "auto" alias
 * (XED_MC_EVAL_BATCH): unset still returns nullopt, but an explicit 0
 * throws the same loud, variable-naming error as garbage would.
 */
inline std::optional<std::uint64_t>
envU64Positive(const char *name)
{
    const auto parsed = envU64(name);
    if (parsed && *parsed == 0)
        throw std::runtime_error(
            std::string(name) +
            ": expected a positive integer; 0 is not a valid value");
    return parsed;
}

} // namespace xed

#endif // XED_COMMON_ENV_HH
