/**
 * @file
 * Atomic counter/gauge registry for live run telemetry.
 *
 * The campaign runner's worker threads bump counters on the hot path
 * (systems simulated, shards completed, per-scheme failures) while a
 * progress thread samples the registry once a second and emits
 * machine-readable status lines. Registration takes a mutex; the
 * returned Counter/Gauge references are stable for the registry's
 * lifetime, so steady-state updates are a single relaxed atomic op.
 */

#ifndef XED_COMMON_METRICS_HH
#define XED_COMMON_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace xed
{

/** Monotonically increasing atomic counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t get() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins atomic gauge (e.g. an ETA or a rate). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double get() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log-bucketed concurrent histogram for latency/rate distributions
 * (shard wall times, systems/sec). Positive values map to one of 8
 * linear sub-buckets per power-of-two octave over [2^-32, 2^32), so a
 * bucket's relative width is at most 1/8 (quantile estimates are
 * within ~6.25% of the true sample quantile); zero, negative and
 * non-finite values land in a dedicated underflow bucket and values
 * beyond either edge clamp to the edge buckets.
 *
 * update() is a single relaxed fetch_add on the bucket counter, safe
 * from any number of threads. merge() folds another histogram in by
 * plain integer addition, so it is exact, associative and commutative
 * -- the same merge discipline as RunningStat::merge, letting
 * per-worker histograms reduce to the same result in any order.
 */
class Histogram
{
  public:
    static constexpr unsigned subBuckets = 8; ///< per octave
    /** frexp-exponent range of the real buckets: octave e covers
     *  [2^(e-1), 2^e), so values span [2^-32 ~ 2.3e-10, 2^32 ~ 4.3e9). */
    static constexpr int minExponent = -31;
    static constexpr int maxExponent = 33;
    static constexpr unsigned bucketCount =
        1 + static_cast<unsigned>(maxExponent - minExponent) *
                subBuckets;

    void update(double value)
    {
        buckets_[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Add @p count samples directly to bucket @p index (< bucketCount).
     *  The telemetry wire codec (obs/telemetry.hh) replays serialized
     *  buckets through this so a decode-and-merge is exactly
     *  Histogram::merge, with no value-to-index re-derivation. */
    void addCount(unsigned index, std::uint64_t count)
    {
        buckets_[index].fetch_add(count, std::memory_order_relaxed);
    }

    /** Fold @p other in (relaxed reads; exact integer addition). */
    void merge(const Histogram &other);

    std::uint64_t count() const;

    /**
     * Approximate q-quantile (q in [0, 1]): the representative value
     * (geometric bucket midpoint) of the bucket holding the
     * ceil(q * count)-th smallest sample. Returns 0 when empty.
     */
    double quantile(double q) const;

    /** The bucket a value lands in (exposed for the property tests). */
    static unsigned bucketIndex(double value);
    /** Representative (midpoint) value of a bucket. */
    static double bucketValue(unsigned index);

    std::uint64_t bucket(unsigned index) const
    {
        return buckets_[index].load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, bucketCount> buckets_{};
};

/**
 * Named counters, gauges and histograms, created on first use.
 * Thread-safe; the returned references stay valid until the registry
 * is destroyed.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Point-in-time snapshots (each value read individually). */
    std::map<std::string, std::uint64_t> counters() const;
    std::map<std::string, double> gauges() const;
    /** Stable pointers: histograms live as long as the registry. */
    std::map<std::string, const Histogram *> histograms() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace xed

#endif // XED_COMMON_METRICS_HH
