/**
 * @file
 * Atomic counter/gauge registry for live run telemetry.
 *
 * The campaign runner's worker threads bump counters on the hot path
 * (systems simulated, shards completed, per-scheme failures) while a
 * progress thread samples the registry once a second and emits
 * machine-readable status lines. Registration takes a mutex; the
 * returned Counter/Gauge references are stable for the registry's
 * lifetime, so steady-state updates are a single relaxed atomic op.
 */

#ifndef XED_COMMON_METRICS_HH
#define XED_COMMON_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace xed
{

/** Monotonically increasing atomic counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t get() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins atomic gauge (e.g. an ETA or a rate). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double get() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Named counters and gauges, created on first use. Thread-safe; the
 * returned references stay valid until the registry is destroyed.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /** Point-in-time snapshots (each value read individually). */
    std::map<std::string, std::uint64_t> counters() const;
    std::map<std::string, double> gauges() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

} // namespace xed

#endif // XED_COMMON_METRICS_HH
