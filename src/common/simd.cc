#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace xed
{

namespace
{

/** Resolved level as int, or -1 before the first simdLevel() call. */
std::atomic<int> resolvedLevel{-1};
std::mutex resolveMutex;
std::string overrideOrigin; // guarded by resolveMutex

SimdLevel
probeCpu()
{
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports consults the libgcc CPUID probe, which
    // already masks out AVX/AVX-512 state the OS does not save
    // (OSXSAVE + XCR0), so a "yes" here means the instructions are
    // actually executable. The AVX-512 kernels use BW byte ops and DQ
    // 64-bit multiplies, so all four baseline subsets are required.
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl"))
        return SimdLevel::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
#elif defined(__aarch64__)
    // AdvSIMD is architecturally mandatory on AArch64; consult HWCAP
    // anyway where available so exotic no-FP configurations (which
    // Linux exposes by clearing the bit) fall back to scalar.
#if defined(__linux__)
    if (!(getauxval(AT_HWCAP) & HWCAP_ASIMD))
        return SimdLevel::Scalar;
#endif
    return SimdLevel::Neon;
#else
    return SimdLevel::Scalar;
#endif
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Neon:
        return "neon";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Avx512:
        return "avx512";
    }
    return "scalar";
}

std::optional<SimdLevel>
parseSimdLevel(std::string_view name)
{
    if (name == "scalar")
        return SimdLevel::Scalar;
    if (name == "neon")
        return SimdLevel::Neon;
    if (name == "avx2")
        return SimdLevel::Avx2;
    if (name == "avx512")
        return SimdLevel::Avx512;
    return std::nullopt;
}

SimdLevel
simdDetectedLevel()
{
    static const SimdLevel detected = probeCpu();
    return detected;
}

bool
simdLevelSupported(SimdLevel level)
{
    if (level == SimdLevel::Scalar)
        return true;
    const SimdLevel detected = simdDetectedLevel();
    if (level == SimdLevel::Neon)
        return detected == SimdLevel::Neon;
    // x86 levels are ordered: AVX-512 hosts also run the AVX2 kernels.
    return detected >= level && detected >= SimdLevel::Avx2;
}

SimdLevel
simdLevel()
{
    const int cached = resolvedLevel.load(std::memory_order_acquire);
    if (cached >= 0)
        return static_cast<SimdLevel>(cached);

    std::lock_guard<std::mutex> lock(resolveMutex);
    const int again = resolvedLevel.load(std::memory_order_relaxed);
    if (again >= 0)
        return static_cast<SimdLevel>(again);

    SimdLevel level = simdDetectedLevel();
    if (const char *env = std::getenv("XED_SIMD")) {
        const auto parsed = parseSimdLevel(env);
        if (!parsed)
            throw std::runtime_error(
                std::string("XED_SIMD: expected scalar, neon, avx2 or "
                            "avx512, got \"") +
                env + "\"");
        if (!simdLevelSupported(*parsed))
            throw std::runtime_error(
                std::string("XED_SIMD=") + env +
                ": level not executable on this host (detected " +
                simdLevelName(simdDetectedLevel()) + ")");
        level = *parsed;
        overrideOrigin = std::string("XED_SIMD=") + env;
    }
    resolvedLevel.store(static_cast<int>(level),
                        std::memory_order_release);
    return level;
}

void
simdForceLevel(SimdLevel level, std::string_view origin)
{
    if (!simdLevelSupported(level))
        throw std::runtime_error(
            std::string(origin) + ": level \"" + simdLevelName(level) +
            "\" not executable on this host (detected " +
            simdLevelName(simdDetectedLevel()) + ")");
    std::lock_guard<std::mutex> lock(resolveMutex);
    overrideOrigin.assign(origin.begin(), origin.end());
    resolvedLevel.store(static_cast<int>(level),
                        std::memory_order_release);
}

std::string
simdOverride()
{
    // Resolve first so an XED_SIMD override set before any kernel ran
    // is reflected here too.
    simdLevel();
    std::lock_guard<std::mutex> lock(resolveMutex);
    return overrideOrigin;
}

} // namespace xed
