/**
 * @file
 * Unit helpers for reliability arithmetic (FIT rates, device-hours) and
 * common time constants used across the reliability experiments.
 */

#ifndef XED_COMMON_UNITS_HH
#define XED_COMMON_UNITS_HH

#include <cstdint>

namespace xed
{

/** Hours in one (365.25-day) year. */
constexpr double hoursPerYear = 24.0 * 365.25;

/** The paper evaluates a 7-year system lifetime. */
constexpr double evaluationYears = 7.0;

/** Hours in the 7-year evaluation period. */
constexpr double evaluationHours = evaluationYears * hoursPerYear;

/**
 * Convert a FIT rate (failures per 10^9 device-hours) to a per-hour
 * event rate for one device.
 */
constexpr double
fitToPerHour(double fit)
{
    return fit * 1e-9;
}

/** Expected event count for one device over @p hours at @p fit. */
constexpr double
fitToExpectedEvents(double fit, double hours)
{
    return fitToPerHour(fit) * hours;
}

/** Mebi/gibi helpers for geometry arithmetic. */
constexpr std::uint64_t operator""_Ki(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_Mi(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_Gi(unsigned long long v) { return v << 30; }

} // namespace xed

#endif // XED_COMMON_UNITS_HH
