/**
 * @file
 * A minimal aligned-column table printer used by the benchmark harnesses
 * to reproduce the paper's tables and figure series in text form, with an
 * optional CSV emitter for plotting.
 */

#ifndef XED_COMMON_TABLE_HH
#define XED_COMMON_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace xed
{

/** Aligned-column text table with an optional title and CSV output. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a pre-formatted row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** Render as CSV (headers + rows) to @p os. */
    void printCsv(std::ostream &os) const;

    /** Helpers for formatting numeric cells. */
    static std::string fmt(double v, int precision = 4);
    static std::string sci(double v, int precision = 2);
    static std::string pct(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace xed

#endif // XED_COMMON_TABLE_HH
