/**
 * @file
 * Bit-manipulation helpers shared by the ECC codecs, the DRAM model and
 * the fault simulator.
 */

#ifndef XED_COMMON_BITOPS_HH
#define XED_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>
#include <cstddef>

namespace xed
{

/** Population count of a 64-bit value. */
inline int
popcount64(std::uint64_t v)
{
    return std::popcount(v);
}

/** Parity (XOR-reduction) of a 64-bit value: 1 if an odd number of bits. */
inline int
parity64(std::uint64_t v)
{
    return std::popcount(v) & 1;
}

/** Extract bit @p pos (0 = LSB) of @p v. */
inline int
getBit(std::uint64_t v, unsigned pos)
{
    return static_cast<int>((v >> pos) & 1u);
}

/** Return @p v with bit @p pos set to @p bit. */
inline std::uint64_t
setBit(std::uint64_t v, unsigned pos, int bit)
{
    const std::uint64_t mask = std::uint64_t{1} << pos;
    return bit ? (v | mask) : (v & ~mask);
}

/** Return @p v with bit @p pos flipped. */
inline std::uint64_t
flipBit(std::uint64_t v, unsigned pos)
{
    return v ^ (std::uint64_t{1} << pos);
}

/** A mask with the low @p n bits set (n in [0,64]). */
inline std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract the bit-field [lsb, lsb+width) of @p v. */
inline std::uint64_t
bitField(std::uint64_t v, unsigned lsb, unsigned width)
{
    return (v >> lsb) & lowMask(width);
}

/** Ceiling of log2 for a positive integer. */
inline unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : 64u - static_cast<unsigned>(std::countl_zero(v - 1));
}

/** True iff @p v is a power of two (v > 0). */
inline bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace xed

#endif // XED_COMMON_BITOPS_HH
