#include "analysis/sdc_due.hh"

#include <cmath>

#include "analysis/multi_catchword.hh"
#include "common/units.hh"

namespace xed::analysis
{

using faultsim::FaultKind;

double
binomialTail(unsigned n, double p, unsigned k)
{
    if (k == 0)
        return 1.0;
    if (p <= 0)
        return 0.0;
    // Sum P(X = i) for i = k..n using log-space terms.
    long double tail = 0.0L;
    const long double logP = std::log(static_cast<long double>(p));
    const long double logQ = std::log(1.0L - static_cast<long double>(p));
    long double logChoose = 0.0L; // log C(n, 0)
    for (unsigned i = 1; i <= k; ++i)
        logChoose += std::log(static_cast<long double>(n - i + 1)) -
                     std::log(static_cast<long double>(i));
    for (unsigned i = k; i <= n; ++i) {
        tail += std::exp(logChoose + logP * i + logQ * (n - i));
        if (i < n)
            logChoose += std::log(static_cast<long double>(n - i)) -
                         std::log(static_cast<long double>(i + 1));
    }
    return static_cast<double>(tail);
}

double
XedVulnerabilityModel::transientWordFaultProbPerRank() const
{
    const double hours = years * hoursPerYear;
    return chipsPerRank * fit.entry(FaultKind::Word).transient * 1e-9 *
           hours;
}

double
XedVulnerabilityModel::dueRatePerRank() const
{
    return transientWordFaultProbPerRank() * detectionEscapeProb;
}

double
XedVulnerabilityModel::misdiagnosisProbPerRow() const
{
    const double perLine = probWordHasScalingFault(scalingRate);
    const unsigned threshold = static_cast<unsigned>(
        std::ceil(interLineThreshold * linesPerRow));
    return binomialTail(linesPerRow, perLine, threshold);
}

double
XedVulnerabilityModel::sdcRatePerRank() const
{
    // Paper recipe: P(any large-granularity failure in the system that
    // triggers Inter-Line diagnosis) x P(misdiagnosis).
    const double hours = years * hoursPerYear;
    const double largeFit = fit.entry(FaultKind::Word).total() +
                            fit.entry(FaultKind::Column).total() +
                            fit.entry(FaultKind::Row).total() +
                            fit.entry(FaultKind::Bank).total() +
                            fit.entry(FaultKind::MultiBank).total() +
                            fit.entry(FaultKind::MultiRank).total();
    const double pLarge =
        chipsPerRank * ranks * largeFit * 1e-9 * hours;
    return pLarge * misdiagnosisProbPerRow();
}

double
XedVulnerabilityModel::multiChipDataLossProb() const
{
    const double hours = years * hoursPerYear;
    const auto lambda = [&](double fitRate) {
        return fitRate * 1e-9 * hours;
    };
    // Multi-bit-per-word kinds that consume the single-erasure budget.
    const double w = lambda(fit.entry(FaultKind::Word).total());
    const double r = lambda(fit.entry(FaultKind::Row).total());
    const double b = lambda(fit.entry(FaultKind::Bank).total());
    // A multi-rank event lands a whole-chip fault in *every* rank of
    // the DIMM, so a given chip sees chip-level faults at the
    // multi-bank rate plus twice the multi-rank rate (its own events
    // and its partner chip's).
    const double c = lambda(fit.entry(FaultKind::MultiBank).total() +
                            2.0 * fit.entry(FaultKind::MultiRank).total());

    // Word-overlap probabilities for two independent uniform ranges
    // (Table V geometry: 8 banks, 32K rows, 128 cols).
    const double banks = 8, rows = 32768, cols = 128;
    const double oWW = 1.0 / (banks * rows * cols);
    const double oWR = 1.0 / (banks * rows);
    const double oWB = 1.0 / banks;
    const double oRR = 1.0 / (banks * rows);
    const double oRB = 1.0 / banks;
    const double oBB = 1.0 / banks;

    // P(two specific chips have word-sharing faults): sum over ordered
    // kind combinations of the two chips.
    const double pPair =
        w * w * oWW + 2 * w * r * oWR + 2 * w * b * oWB + 2 * w * c +
        r * r * oRR + 2 * r * b * oRB + 2 * r * c + b * b * oBB +
        2 * b * c + c * c;

    const double pairsPerRank =
        chipsPerRank * (chipsPerRank - 1) / 2.0;
    return ranks * pairsPerRank * pPair;
}

} // namespace xed::analysis
