#include "analysis/collision.hh"

#include <cmath>

#include "common/units.hh"

namespace xed::analysis
{

double
CollisionModel::perWriteProbability() const
{
    return std::pow(2.0, -static_cast<double>(catchWordBits));
}

double
CollisionModel::meanSecondsToCollision() const
{
    return writeIntervalSeconds / perWriteProbability();
}

double
CollisionModel::meanYearsToCollision() const
{
    return meanSecondsToCollision() / (hoursPerYear * 3600.0);
}

double
CollisionModel::probCollisionWithinYears(double years) const
{
    return 1.0 - std::exp(-years / meanYearsToCollision());
}

CollisionModel
paperX8Model()
{
    return {64, paperEffectiveWriteIntervalSeconds};
}

CollisionModel
paperX4Model()
{
    return {32, paperEffectiveWriteIntervalSeconds};
}

CollisionModel
raw4nsX8Model()
{
    return {64, 4e-9};
}

} // namespace xed::analysis
