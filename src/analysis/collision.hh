/**
 * @file
 * Analytical model of catch-word/data collisions (Section V-D,
 * Figure 6).
 *
 * Every write has probability 2^-w (w = catch-word width) of storing a
 * value equal to the catch-word; collisions over time follow a Poisson
 * process, so P(collision within t) = 1 - exp(-t / MTTC).
 *
 * Note on the paper's numbers: with a write every 4ns, 2^64 writes take
 * ~2,339 years, yet the paper reports a mean of 3.2 million years for
 * x8 (and 6.6 hours for x4). Both of the paper's values back-solve to
 * the *same* effective interval between distinct-value writes of one
 * chip, ~5.48us; we expose the interval as a parameter and provide both
 * the raw-4ns and the paper-effective models. See EXPERIMENTS.md.
 */

#ifndef XED_ANALYSIS_COLLISION_HH
#define XED_ANALYSIS_COLLISION_HH

namespace xed::analysis
{

struct CollisionModel
{
    /** Catch-word width: 64 for x8 devices, 32 for x4 (Section IX-A). */
    unsigned catchWordBits = 64;
    /** Mean time between distinct-value writes reaching one chip. */
    double writeIntervalSeconds = 4e-9;

    /** Probability that one write collides with the catch-word. */
    double perWriteProbability() const;

    /** Mean time to collision, in seconds / years. */
    double meanSecondsToCollision() const;
    double meanYearsToCollision() const;

    /** P(at least one collision within @p years). */
    double probCollisionWithinYears(double years) const;
};

/**
 * The effective write interval implied by the paper's "once every 3.2
 * million years" (x8) and "6.6 hours" (x4) figures: both give ~5.48us.
 */
constexpr double paperEffectiveWriteIntervalSeconds = 5.48e-6;

/** Convenience: the model as parameterized in the paper. */
CollisionModel paperX8Model();
CollisionModel paperX4Model();
/** The literal reading: a 64-bit write every 4ns. */
CollisionModel raw4nsX8Model();

} // namespace xed::analysis

#endif // XED_ANALYSIS_COLLISION_HH
