#include "analysis/multi_catchword.hh"

#include <cmath>

namespace xed::analysis
{

double
probWordHasScalingFault(double scalingRate)
{
    return 1.0 - std::pow(1.0 - scalingRate, 64.0);
}

double
probMultipleCatchWords(double scalingRate, unsigned chips)
{
    const double p = probWordHasScalingFault(scalingRate);
    const double n = static_cast<double>(chips);
    const double none = std::pow(1.0 - p, n);
    const double one = n * p * std::pow(1.0 - p, n - 1.0);
    return 1.0 - none - one;
}

double
paperTable3Value(double scalingRate)
{
    const double p = 64.0 * scalingRate;
    return p * p / 2.0;
}

double
accessesBetweenMultiCatchWords(double scalingRate, unsigned chips)
{
    const double p = probMultipleCatchWords(scalingRate, chips);
    return p > 0 ? 1.0 / p : 0.0;
}

} // namespace xed::analysis
