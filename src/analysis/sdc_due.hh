/**
 * @file
 * Closed-form SDC/DUE model for XED (Section VIII, Table IV).
 *
 * The three vulnerability sources:
 *  - DUE from transient word faults: the fault escapes on-die detection
 *    (0.8%) and both diagnosis passes fail (transient faults leave no
 *    trace for the Intra-Line probe).
 *  - SDC from Inter-Line misdiagnosis: under scaling faults, a healthy
 *    chip can exceed the 10%-of-row catch-word threshold.
 *  - Data loss from multi-chip failures (the residual the scheme is not
 *    designed to correct; dominates overall).
 */

#ifndef XED_ANALYSIS_SDC_DUE_HH
#define XED_ANALYSIS_SDC_DUE_HH

#include "faultsim/fit_rates.hh"

namespace xed::analysis
{

struct XedVulnerabilityModel
{
    faultsim::FitTable fit{};
    double years = 7.0;
    unsigned chipsPerRank = 9;
    unsigned ranks = 8; ///< 4 channels x 2 ranks (Table V)
    double detectionEscapeProb = 0.008;
    double scalingRate = 1e-4;
    unsigned linesPerRow = 128;
    double interLineThreshold = 0.10;

    /** P(some chip of one rank takes a transient word fault), ~7.7e-4. */
    double transientWordFaultProbPerRank() const;

    /** Table IV "Word Failure (DUE)": ~6.1e-6 per rank over 7 years. */
    double dueRatePerRank() const;

    /**
     * P(a row of a healthy chip shows >= threshold catch-word lines due
     * to scaling faults alone) -- the per-diagnosis misdiagnosis
     * probability (~1e-12 at scaling 1e-4).
     */
    double misdiagnosisProbPerRow() const;

    /** Table IV "Row/Column/Bank Failure (SDC)": ~1.4e-13. */
    double sdcRatePerRank() const;

    /**
     * Analytic estimate of the multi-chip data-loss probability for the
     * whole system (Table IV: 5.8e-4): sum over chip pairs of the
     * product of multi-bit fault rates weighted by the probability
     * their ranges share a word.
     */
    double multiChipDataLossProb() const;
};

/** Binomial tail P(X >= k), X ~ Binomial(n, p); numerically stable. */
double binomialTail(unsigned n, double p, unsigned k);

} // namespace xed::analysis

#endif // XED_ANALYSIS_SDC_DUE_HH
