/**
 * @file
 * Likelihood of receiving multiple catch-words in one access (Section
 * VII-A, Table III). An access reads one 64-bit word from each of the 9
 * chips; each word carries a scaling fault (and thus triggers a
 * catch-word) with probability 1-(1-r)^64.
 */

#ifndef XED_ANALYSIS_MULTI_CATCHWORD_HH
#define XED_ANALYSIS_MULTI_CATCHWORD_HH

namespace xed::analysis
{

/** P(a 64-bit word contains at least one scaling-faulty bit). */
double probWordHasScalingFault(double scalingRate);

/**
 * P(>= 2 of the @p chips send a catch-word in one access): the exact
 * binomial complement.
 */
double probMultipleCatchWords(double scalingRate, unsigned chips = 9);

/**
 * The closed form the paper's Table III reports: (64 r)^2 / 2, i.e. the
 * per-pair probability without the chip-pair count. Kept so the
 * reproduction can print the paper's own numbers next to the exact
 * model.
 */
double paperTable3Value(double scalingRate);

/** Expected accesses between serial-mode episodes (1/p). */
double accessesBetweenMultiCatchWords(double scalingRate,
                                      unsigned chips = 9);

} // namespace xed::analysis

#endif // XED_ANALYSIS_MULTI_CATCHWORD_HH
